"""E10 — fine calibration: the bound F >= sum of compensations matters.

Section 4 requires the fine to exceed the projected compensation bill
so that no deviation can net out positive.  This experiment sweeps the
fine's safety factor through the threshold and reports the bidding-
phase deviant's utility: below the bound the deterrence argument of
Lemma 5.1 loses its teeth (the fine shrinks toward zero while the
honest utility the deviant forgoes stays fixed).
"""

import numpy as np
import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.analysis.reporting import format_table
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.core.fines import FinePolicy
from repro.dlt.platform import BusNetwork, NetworkKind

W = [2.0, 3.0, 5.0, 4.0]
Z = 0.4
FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


def sweep():
    rows = []
    net = BusNetwork(tuple(W), Z, NetworkKind.NCP_FE)
    for f in FACTORS:
        policy = FinePolicy(f)
        honest = DLSBLNCP(W, NetworkKind.NCP_FE, Z, policy=policy).run()
        deviant = DLSBLNCP(W, NetworkKind.NCP_FE, Z, policy=policy,
                           behaviors={1: AgentBehavior(
                               deviations={Deviation.MULTIPLE_BIDS})}).run()
        rows.append((
            f,
            policy.fine_amount(net),
            policy.satisfies_paper_bound(net),
            deviant.utilities["P2"],
            honest.utilities["P2"],
            deviant.utilities["P2"] - honest.utilities["P2"],
        ))
    return rows


def test_fine_threshold_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(format_table(
        ("safety factor", "F", "F >= sum comp?", "U(deviate)", "U(comply)",
         "deviation gain"),
        rows,
        title="Fine calibration (bidding-phase deviant, NCP-FE)"))
    # At or above the paper's bound, deviation strictly loses.
    for f, F, ok, u_dev, u_honest, gain in rows:
        if ok:
            assert gain < 0
    # The deterrence margin is monotone in the fine.
    gains = [r[5] for r in rows]
    assert all(a >= b - 1e-12 for a, b in zip(gains, gains[1:]))


def test_fine_always_covers_slow_execution_with_margin(benchmark, report):
    """The factor-2 default covers execution up to 2x slower than bid."""

    def check(instances=100):
        rng = np.random.default_rng(5)
        policy = FinePolicy(2.0)
        violations = 0
        for _ in range(instances):
            m = int(rng.integers(2, 12))
            w = rng.uniform(1.0, 10.0, m)
            net = BusNetwork(tuple(w), float(rng.uniform(0.1, 1.0)),
                             NetworkKind.NCP_FE)
            w_exec = w * rng.uniform(1.0, 2.0, m)
            if not policy.satisfies_paper_bound(net, w_exec=w_exec):
                violations += 1
        return instances, violations

    n, violations = benchmark.pedantic(check, rounds=1, iterations=1)
    assert violations == 0
    report(f"F = 2x base covers observed compensations in {n}/{n} random "
           "instances with up to 2x execution slowdown")
