"""E11b — future-work extension: multi-installment scheduling.

Splitting the load into pipelined installments lets workers start after
a fraction of the communication: makespan falls with the round count,
with diminishing returns, and the gain grows with the communication
rate z (communication-bound instances benefit most).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.dlt.multiround import multiround_makespan, round_sweep
from repro.dlt.platform import BusNetwork, NetworkKind

W = (2.0, 2.5, 3.0, 2.0, 2.5, 3.5)


def test_multiround_round_sweep(benchmark, report):
    net = BusNetwork(W, 1.0, NetworkKind.CP)
    sweep = benchmark.pedantic(round_sweep, args=(net, 12), rounds=1,
                               iterations=1)
    assert all(r.makespan <= sweep[0].makespan + 1e-9 for r in sweep)
    best = min(sweep, key=lambda r: r.makespan)
    assert best.speedup > 1.05
    report(format_table(
        ("rounds", "makespan", "speedup vs single round"),
        [(r.rounds, r.makespan, r.speedup) for r in sweep],
        title=f"Multiround sweep (CP, m={len(W)}, z=1.0)"))


def test_multiround_gain_peaks_at_balanced_z(benchmark, report):
    """The multiround speedup is unimodal in z: at tiny z communication
    is negligible (nothing to hide), at huge z the bus itself is the
    binding bottleneck (total communication z*1 lower-bounds the CP
    makespan, pipelined or not).  The gain peaks where communication and
    computation are comparable."""

    def z_sweep():
        rows = []
        for z in (0.02, 0.1, 0.5, 1.0, 2.0, 8.0):
            net = BusNetwork(W, z, NetworkKind.CP)
            r = multiround_makespan(net, 8)
            rows.append((z, r.single_round_makespan, r.makespan, r.speedup))
        return rows

    rows = benchmark.pedantic(z_sweep, rounds=1, iterations=1)
    speedups = [r[3] for r in rows]
    peak = max(speedups)
    assert peak == max(speedups[1:-1])      # interior maximum
    assert peak > speedups[0] and peak > speedups[-1]
    assert peak > 1.1
    report(format_table(
        ("z", "single-round T", "8-round T", "speedup"), rows,
        title="Multiround benefit vs communication rate (CP): unimodal, "
              "peaking where comm ~ compute"))


def test_optimized_installments_beat_equal(benchmark, report):
    """Optimizing installment sizes over the pipeline simulator: the
    size profile adapts to the regime (growing when compute-bound,
    front-heavy when communication-bound) and strictly beats the equal
    split where there is room."""
    from repro.dlt.multiround import optimize_installments

    def sweep():
        rows = []
        for z in (0.5, 1.0, 2.0):
            net = BusNetwork((2.0, 2.0, 2.0, 2.0), z, NetworkKind.CP)
            eq = multiround_makespan(net, 6)
            opt = optimize_installments(net, 6)
            gammas = [round(sum(r), 3) for r in opt.per_round_alpha]
            rows.append((z, eq.makespan, opt.makespan,
                         eq.makespan / opt.makespan, str(gammas)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for z, t_eq, t_opt, gain, _ in rows:
        assert t_opt <= t_eq + 1e-12
    assert any(r[3] > 1.01 for r in rows)
    report(format_table(
        ("z", "equal-split T", "optimized T", "gain", "installment sizes"),
        rows,
        title="Optimized vs equal installments (CP, m=4, R=6)"))


def test_multiround_all_kinds(benchmark, report):
    def all_kinds():
        rows = []
        for kind in NetworkKind:
            net = BusNetwork(W, 1.0, kind)
            r = multiround_makespan(net, 8)
            rows.append((kind.value, r.single_round_makespan, r.makespan,
                         r.speedup))
        return rows

    rows = benchmark.pedantic(all_kinds, rounds=1, iterations=1)
    for kind_name, single, multi, speedup in rows:
        assert multi <= single + 1e-9
    report(format_table(
        ("kind", "single-round T", "8-round T", "speedup"), rows,
        title="Multiround across system models (z=1.0); NCP-FE gains ~nothing "
              "because its originator already computes from t=0"))
