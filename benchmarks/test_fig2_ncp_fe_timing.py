"""E2 — Figure 2: bus network WITHOUT control processor, front-ended
originator.

The figure's distinguishing features: P1 computes from t = 0 with no
communication row of its own, transmissions start with alpha_2, and all
processors finish together (Eq. 2 + recursion 7).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.schedule import build_schedule, render_gantt
from repro.dlt.timing import finish_times

W = (2.0, 3.0, 5.0, 4.0)
Z = 0.6


def build_figure(w=W, z=Z):
    net = BusNetwork(w, z, NetworkKind.NCP_FE)
    alpha = allocate(net)
    return net, alpha, build_schedule(alpha, net)


def test_fig2_ncp_fe_timing(benchmark, report):
    net, alpha, sched = benchmark(build_figure)
    T = finish_times(alpha, net)

    # Visual claims of Figure 2
    p1 = [s for s in sched.compute_segments if s.processor == 0][0]
    assert p1.start == 0.0                             # front end: no delay
    assert len(sched.bus_segments) == net.m - 1        # alpha_1 never shipped
    assert sched.bus_segments[0].processor == 1        # comm starts at alpha_2
    assert np.allclose(T, T[0])

    # Recursion (7): alpha_i w_i = alpha_{i+1} (z + w_{i+1})
    w = np.asarray(net.w)
    assert np.allclose(alpha[:-1] * w[:-1], alpha[1:] * (net.z + w[1:]))

    rows = [(net.names[i], float(alpha[i]), float(T[i])) for i in range(net.m)]
    report(f"Figure 2 (NCP-FE): m={net.m}, w={list(W)}, z={Z}")
    report(format_table(("proc", "alpha_i", "T_i"), rows))
    report(render_gantt(sched))


def test_fig2_originator_never_idles(benchmark, report):
    """P1's compute segment spans [0, T]: the front end fully overlaps."""

    def check():
        net, alpha, sched = build_figure()
        p1 = [s for s in sched.compute_segments if s.processor == 0][0]
        assert p1.start == 0.0
        assert p1.end == pytest.approx(sched.makespan)
        return sched.makespan

    t = benchmark(check)
    report(f"NCP-FE originator busy for the entire makespan T = {t:.6f}")
