"""E16 (ablation) — load-division granularity.

The user divides the load into equal-sized signed blocks, so the
continuous optimal fractions are quantized (largest-remainder rule).
This ablation measures the makespan inflation that quantization costs
as a function of the block count: it must decay like ~1/num_blocks,
and the protocol's dispute machinery must stay silent (honest parties
never disagree about entitlements because everyone applies the same
deterministic rule).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.crypto.blocks import quantize_blocks
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import makespan

W = (2.0, 3.0, 5.0, 4.0)
Z = 0.4
BLOCK_COUNTS = (10, 30, 100, 300, 1000, 3000)


def test_quantization_inflation_decays(benchmark, report):
    def sweep():
        net = BusNetwork(W, Z, NetworkKind.NCP_FE)
        alpha = allocate(net)
        t_opt = makespan(alpha, net)
        rows = []
        for n in BLOCK_COUNTS:
            counts = np.array(quantize_blocks(alpha, n), dtype=float)
            t_q = makespan(counts / n, net)
            rows.append((n, t_q, (t_q - t_opt) / t_opt))
        return t_opt, rows

    t_opt, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    inflations = [r[2] for r in rows]
    assert all(i >= -1e-12 for i in inflations)
    assert inflations[-1] < inflations[0]
    assert inflations[-1] < 1e-3              # 3000 blocks: negligible
    # decay rate ~1/n: log-log slope near -1
    slope, _ = np.polyfit(np.log(BLOCK_COUNTS), np.log(np.maximum(inflations, 1e-12)), 1)
    assert slope < -0.5
    report(format_table(
        ("num blocks", "quantized makespan", "relative inflation"), rows,
        title=f"Quantization cost (continuous optimum T = {t_opt:.6f}); "
              f"log-log decay slope = {slope:.2f}"))


def test_no_spurious_disputes_at_any_granularity(benchmark, report):
    """Shared deterministic quantization => zero false positives."""

    def sweep():
        rows = []
        for n in (7, 23, 120, 997):
            out = DLSBLNCP(list(W), NetworkKind.NCP_FE, Z, num_blocks=n).run()
            rows.append((n, out.completed, len(out.verdicts)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(completed and verdicts == 0 for _, completed, verdicts in rows)
    report(format_table(
        ("num blocks", "completed", "disputes"), rows,
        title="Honest protocol vs block granularity: no spurious disputes "
              "(largest-remainder rule is common knowledge)"))
