#!/usr/bin/env python3
"""Audit the mechanism's incentives on your own cluster description.

Given per-unit processing times and a bus rate (defaults provided, or
pass them on the command line), this example sweeps every processor
through a grid of misreporting and slacking strategies and prints each
one's utility landscape — an empirical strategyproofness certificate
for the exact instance you care about.

Run:  python examples/truthfulness_audit.py [z w1 w2 w3 ...]
e.g.: python examples/truthfulness_audit.py 0.3 2 3 5 4 6
"""

import sys

import numpy as np

from repro import BusNetwork, NetworkKind
from repro.analysis.reporting import format_table
from repro.analysis.strategyproofness import (
    agent_utility,
    best_response_bid_factor,
    utility_surface,
)

BID_FACTORS = [0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0]
EXEC_FACTORS = [1.0, 1.2, 1.5, 2.0]


def parse_args(argv):
    if len(argv) >= 3:
        z = float(argv[1])
        w = [float(x) for x in argv[2:]]
    else:
        z, w = 0.4, [2.0, 3.0, 5.0, 4.0]
    return z, w


def audit(net: BusNetwork) -> bool:
    print(f"\n### {net.kind.value} "
          f"(w={list(net.w)}, z={net.z}) ###")
    all_truthful = True
    for i in range(net.m):
        surface = utility_surface(net, i, BID_FACTORS, EXEC_FACTORS)
        r, c = np.unravel_index(np.argmax(surface), surface.shape)
        best_bid, best_exec = BID_FACTORS[r], EXEC_FACTORS[c]
        u_truth = agent_utility(net, i)
        rows = [(bf, *[round(float(surface[ri, ci]), 4)
                       for ci in range(len(EXEC_FACTORS))])
                for ri, bf in enumerate(BID_FACTORS)]
        print(format_table(
            ("bid \\ exec", *[str(e) for e in EXEC_FACTORS]), rows,
            title=f"{net.names[i]}: utility surface "
                  f"(truthful = bid 1.0 / exec 1.0 -> {u_truth:.4f})"))
        verdict = "truth-telling optimal"
        if (best_bid, best_exec) != (1.0, 1.0):
            gain = float(surface[r, c]) - u_truth
            if gain > 1e-9:
                verdict = (f"WARNING: ({best_bid}, {best_exec}) beats truth "
                           f"by {gain:.2e}")
                all_truthful = False
            else:
                verdict = "truth-telling optimal (plateau tie)"
        print(f"  -> {verdict}\n")
    return all_truthful


def main() -> None:
    z, w = parse_args(sys.argv)
    ok = True
    for kind in (NetworkKind.CP, NetworkKind.NCP_FE, NetworkKind.NCP_NFE):
        net = BusNetwork(tuple(w), z, kind)
        ok &= audit(net)
    if ok:
        print("AUDIT PASSED: no profitable deviation found on any system "
              "model for this instance.")
    else:
        print("AUDIT FLAGGED deviations — check the DLT regime (z vs w_m "
              "for NCP-NFE; see DESIGN.md).")
        sys.exit(1)


if __name__ == "__main__":
    main()
