#!/usr/bin/env python3
"""Quickstart: schedule a divisible load and pay the processors.

Walks the three layers of the library on one small cluster:

1. classical DLT — optimal fractions and the Figure-style schedule;
2. the centralized DLS-BL mechanism — payments and utilities when a
   trusted control processor runs everything;
3. the distributed DLS-BL-NCP mechanism — the same outcome negotiated
   over a bus with no trusted party at all.

Run:  python examples/quickstart.py
"""

from repro import DLSBL, DLSBLNCP, BusNetwork, NetworkKind, allocate, finish_times
from repro.analysis.reporting import format_table
from repro.dlt.schedule import build_schedule, render_gantt

# A heterogeneous four-node cluster on a shared bus.  w_i = seconds per
# unit of load; z = seconds to move one unit across the bus.
W = [2.0, 3.0, 5.0, 4.0]
Z = 0.5


def step1_classical_dlt() -> None:
    print("=" * 72)
    print("1. Classical DLT: optimal load fractions (Algorithm 2.1)")
    print("=" * 72)
    net = BusNetwork(tuple(W), Z, NetworkKind.NCP_FE)
    alpha = allocate(net)
    T = finish_times(alpha, net)
    print(format_table(
        ("processor", "w_i", "alpha_i", "finish time"),
        [(net.names[i], W[i], float(alpha[i]), float(T[i]))
         for i in range(net.m)]))
    print("\nAll processors finish simultaneously (Theorem 2.1):\n")
    print(render_gantt(build_schedule(alpha, net)))


def step2_centralized_mechanism() -> None:
    print()
    print("=" * 72)
    print("2. DLS-BL: strategyproof payments with a trusted control node")
    print("=" * 72)
    mech = DLSBL(NetworkKind.NCP_FE, Z)
    result = mech.truthful_run(W)
    print(format_table(
        ("processor", "alpha_i", "compensation", "bonus", "payment Q_i",
         "utility"),
        [(f"P{i+1}", result.alpha[i], result.compensations[i],
          result.bonuses[i], result.payments[i], result.utilities[i])
         for i in range(len(W))]))
    print(f"\nUser pays {result.user_cost:.4f} total; every truthful "
          "processor profits (Theorem 3.2).")

    # Why lie?  You only lose:
    lied = mech.run([W[0], 1.5 * W[1], W[2], W[3]], W)
    print(f"If P2 overbids 1.5x: utility {lied.utilities[1]:.4f} "
          f"< truthful {result.utilities[1]:.4f}  (Theorem 3.1)")


def step3_distributed_mechanism() -> None:
    print()
    print("=" * 72)
    print("3. DLS-BL-NCP: no trusted party — processors run the mechanism")
    print("=" * 72)
    outcome = DLSBLNCP(W, NetworkKind.NCP_FE, Z).run()
    assert outcome.completed
    print(format_table(
        ("processor", "bid", "payment", "final balance", "utility"),
        [(n, outcome.bids[n], outcome.payments[n], outcome.balances[n],
          outcome.utilities[n]) for n in outcome.order]))
    print(f"\nProtocol completed in phase {outcome.terminal_phase.name}; "
          f"{outcome.traffic.control_messages} control messages "
          f"({outcome.traffic.control_bytes} bytes) on the bus; "
          f"no fines: {not outcome.fined}.")


if __name__ == "__main__":
    step1_classical_dlt()
    step2_centralized_mechanism()
    step3_distributed_mechanism()
