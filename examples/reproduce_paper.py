#!/usr/bin/env python3
"""One-command artifact evaluation: regenerate every paper result.

Runs the entire benchmark harness (figures, theorems, ablations,
extensions) and collates the per-experiment reproduction tables from
``benchmarks/results/`` into a single ``REPRODUCTION_REPORT.md`` next
to EXPERIMENTS.md — the file a reviewer reads to check paper-vs-measured
in one place.

Run:  python examples/reproduce_paper.py
(takes ~30 s; requires the package installed, `pip install -e .`)
"""

from __future__ import annotations

import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
REPORT = REPO / "REPRODUCTION_REPORT.md"


def run_benchmarks() -> int:
    print("Running the full benchmark harness (pytest benchmarks/ "
          "--benchmark-only) ...")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(REPO / "benchmarks"),
         "--benchmark-only", "-q", "--benchmark-disable-gc"],
        cwd=REPO, capture_output=True, text=True)
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"  -> {tail}")
    if proc.returncode != 0:
        print(proc.stdout[-3000:])
        print(proc.stderr[-1000:], file=sys.stderr)
    return proc.returncode


def collate() -> str:
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    parts = [
        "# Reproduction report",
        "",
        f"Generated {stamp} by `examples/reproduce_paper.py` from a clean",
        "run of `pytest benchmarks/ --benchmark-only`.  Claim-by-claim",
        "commentary lives in EXPERIMENTS.md; this file is the raw "
        "regenerated artifact per experiment.",
        "",
    ]
    files = sorted(RESULTS.glob("*.txt"))
    for path in files:
        parts.append(f"## {path.stem}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    parts.append(f"_{len(files)} experiment artifacts collated._")
    return "\n".join(parts) + "\n"


def main() -> int:
    rc = run_benchmarks()
    if rc != 0:
        print("benchmark run FAILED; report not written", file=sys.stderr)
        return rc
    REPORT.write_text(collate())
    n = len(list(RESULTS.glob("*.txt")))
    print(f"Collated {n} experiment tables into {REPORT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
