#!/usr/bin/env python3
"""A compute market with cheaters: watch the referee earn its keep.

Scenario: four independent organizations rent out their machines for
divisible workloads (think render farms or genome chunks).  There is no
operator everyone trusts, so they run DLS-BL-NCP.  We replay the same
engagement under a rogues' gallery of strategies and show, for each,
what the protocol does and who ends up with what.

Run:  python examples/strategic_market.py
"""

from repro import DLSBLNCP, NetworkKind
from repro.agents import AgentBehavior, Deviation, misreport, slow_execution
from repro.analysis.reporting import format_table
from repro.core.fines import FinePolicy

W = [2.0, 3.0, 5.0, 4.0]      # true unit-processing times
Z = 0.4                        # bus rate
KIND = NetworkKind.NCP_FE      # P1 holds the data and has a front end
POLICY = FinePolicy(2.0)       # F = 2 x projected compensation bill

SCENARIOS = [
    ("everyone honest", {}),
    ("P2 overbids 1.6x (claims to be slow)", {1: misreport(1.6)}),
    ("P3 sandbagging (runs 1.5x slower than bid)", {2: slow_execution(1.5)}),
    ("P2 broadcasts two different bids",
     {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}),
    ("originator P1 short-ships P3's blocks",
     {0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                       deviation_params={"victim": "P3", "delta_blocks": 3})}),
    ("P4 submits a doctored payment vector",
     {3: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})}),
    ("P2 falsely accuses P1 of equivocating",
     {1: AgentBehavior(deviations={Deviation.FALSE_EQUIVOCATION_CLAIM},
                       deviation_params={"victim": "P1"})}),
]


def describe(outcome) -> str:
    if outcome.completed and not outcome.fined:
        return "completed cleanly"
    if outcome.completed:
        fined = ", ".join(f"{k} fined {v:.2f}" for k, v in outcome.fined.items())
        return f"completed; {fined}"
    fined = ", ".join(f"{k} fined {v:.2f}" for k, v in outcome.fined.items())
    return f"TERMINATED in {outcome.terminal_phase.name}; {fined}"


def main() -> None:
    print(f"Market: w={W}, z={Z}, fine policy = 2x compensation bill\n")
    baseline = DLSBLNCP(W, KIND, Z, policy=POLICY).run()

    rows = []
    for label, behaviors in SCENARIOS:
        out = DLSBLNCP(W, KIND, Z, behaviors=behaviors, policy=POLICY).run()
        rows.append((label, describe(out),
                     *(round(out.utilities[n], 3) for n in out.order)))

    print(format_table(
        ("scenario", "protocol outcome", "U(P1)", "U(P2)", "U(P3)", "U(P4)"),
        rows,
        title="Utility of every participant under each strategy profile"))

    print("\nReading the table:")
    print(" * honest row: everyone profits — voluntary participation (Thm 5.3)")
    print(" * misreporting/sandbagging rows: no fine, but the cheater's own")
    print("   utility drops — strategyproofness with verification (Thm 5.2)")
    print(" * protocol-deviation rows: the deviant is caught, fined more than")
    print("   it could ever gain, and the informers split the fine (Thm 5.1)")

    # The deterrence ledger for the equivocation case, in detail.
    out = DLSBLNCP(W, KIND, Z, policy=POLICY,
                   behaviors={1: AgentBehavior(
                       deviations={Deviation.MULTIPLE_BIDS})}).run()
    print(f"\nEquivocation case detail: fine F = {out.fine_amount:.4f}")
    print(format_table(
        ("party", "balance", "vs honest utility"),
        [(n, round(out.balances[n], 4),
          round(baseline.utilities[n], 4)) for n in out.order]))


if __name__ == "__main__":
    main()
