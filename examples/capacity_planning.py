#!/usr/bin/env python3
"""Capacity planning: which system model, how many machines, what regime?

A user with a divisible workload and a catalogue of machines wants to
answer three practical questions before committing:

1. Which bus organization (CP / NCP-FE / NCP-NFE) is fastest here, and
   is the instance inside the regime where the mechanism's guarantees
   hold?
2. With realistic startup overheads, how many of the machines are even
   worth using for this load size?
3. What will incentive compatibility cost on top of the raw compute
   bill?

This example answers all three with the library's planning APIs.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import BusNetwork, NetworkKind
from repro.analysis.economics import user_cost_breakdown
from repro.analysis.reporting import format_table
from repro.analysis.welfare import kind_comparison
from repro.dlt.affine import AffineBus, optimal_cohort
from repro.dlt.regime import diagnose

MACHINES = [2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0]  # seconds per unit
Z = 0.6                                                # bus rate
S_C, S_P = 0.25, 0.1                                   # startup overheads


def question_1_system_model() -> None:
    print("=" * 72)
    print("Q1: which system model, and do the guarantees hold?")
    print("=" * 72)
    kc = kind_comparison(MACHINES, Z)
    rows = []
    for kind in kc.ranking:
        rep = diagnose(BusNetwork(tuple(MACHINES), Z, kind))
        rows.append((kind.value, kc.makespans[kind],
                     "yes" if rep.mechanism_guarantees_hold else "NO"))
    print(format_table(
        ("system model", "makespan (unit load)", "guarantees hold?"),
        rows, title=f"w={MACHINES}, z={Z} (fastest first)"))
    print()


def question_2_cohort_size() -> None:
    print("=" * 72)
    print(f"Q2: with startups s_c={S_C}, s_p={S_P}, how many machines per "
          "load size?")
    print("=" * 72)
    rows = []
    for load in (0.25, 1.0, 4.0, 16.0, 64.0):
        bus = AffineBus(tuple(MACHINES), Z, s_c=S_C, s_p=S_P, load=load)
        size, alpha, t = optimal_cohort(bus)
        rows.append((load, f"{size}/{len(MACHINES)}", t, t / load))
    print(format_table(
        ("load volume", "machines used", "makespan", "time per unit"),
        rows, title="Optimal cohort vs load (affine cost model)"))
    print("Small jobs cannot amortize the startup costs: renting the whole "
          "rack would\nactually be slower.\n")


def question_3_cost_of_truthfulness() -> None:
    print("=" * 72)
    print("Q3: what does strategyproofness add to the bill?")
    print("=" * 72)
    rows = []
    for m in (2, 4, 8):
        bd = user_cost_breakdown(MACHINES[:m], NetworkKind.NCP_FE, Z)
        rows.append((m, bd.compensation_total, bd.bonus_total,
                     f"{(bd.overpayment_ratio - 1) * 100:.1f}%"))
    print(format_table(
        ("machines", "raw compute bill", "truthfulness premium",
         "premium %"),
        rows, title="Cost decomposition (truthful run, NCP-FE)"))
    print("The premium shrinks as the market grows — incentive "
          "compatibility is\nnearly free at scale.")


if __name__ == "__main__":
    question_1_system_model()
    question_2_cohort_size()
    question_3_cost_of_truthfulness()
