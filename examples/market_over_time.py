#!/usr/bin/env python3
"""A compute market over many jobs: why one deviation never pays.

The single-engagement analysis says a deviant is fined more than it can
gain.  This example runs the market for a season — 10 jobs — in two
parallel worlds (P2 cheats once in job 1 vs. P2 stays honest) and plots
the cumulative earnings race.  The fine turns into a permanent gap that
honest jobs can never close, while the informers bank their rewards.

Run:  python examples/market_over_time.py
"""

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.analysis.reporting import format_table
from repro.core.fines import FinePolicy
from repro.dlt.platform import NetworkKind
from repro.protocol.sessions import MarketSession

W = [2.0, 3.0, 5.0, 4.0]
Z = 0.4
JOBS = 10


def run_world(deviate_in_job: int | None) -> MarketSession:
    session = MarketSession(W, NetworkKind.NCP_FE, Z, policy=FinePolicy(2.0))
    session.run_schedule(JOBS, behavior_schedule=lambda j: (
        {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}
        if j == deviate_in_job else None))
    return session


def sparkline(series, lo, hi, width=32) -> str:
    cells = " .:-=+*#%@"
    span = hi - lo or 1.0
    return "".join(cells[min(9, int((v - lo) / span * 9.99))] for v in series)


def main() -> None:
    honest = run_world(None)
    cheat = run_world(0)

    print(f"Market: w={W}, z={Z}, {JOBS} jobs, F = 2x compensation bill\n")

    rows = []
    for j in range(JOBS):
        rows.append((
            j + 1,
            round(honest.earnings_series("P2")[j], 3),
            round(cheat.earnings_series("P2")[j], 3),
            round(cheat.earnings_series("P1")[j], 3),
        ))
    print(format_table(
        ("after job", "P2 cumulative (honest world)",
         "P2 cumulative (cheated job 1)", "P1 cumulative (informer)"),
        rows,
        title="Cumulative utility race"))

    all_values = (honest.earnings_series("P2") + cheat.earnings_series("P2"))
    lo, hi = min(all_values), max(all_values)
    print("\nP2 honest:  " + sparkline(honest.earnings_series("P2"), lo, hi))
    print("P2 cheated: " + sparkline(cheat.earnings_series("P2"), lo, hi))

    gap = (honest.cumulative_utility("P2") - cheat.cumulative_utility("P2"))
    per_job = honest.records[0].outcome.utilities["P2"]
    print(f"\nPermanent gap: {gap:.4f} = {gap / per_job:.1f} jobs of honest "
          "profit, forfeited by a single deviation.")
    print("Informers P1/P3/P4 finished ahead of their honest-world selves by "
          f"{cheat.cumulative_utility('P1') - honest.cumulative_utility('P1'):.4f} each.")


if __name__ == "__main__":
    main()
