#!/usr/bin/env python3
"""When even the broadcast can't be trusted: commitments at work.

The paper's protocol leans on a shared bus with reliable *atomic*
broadcast — every processor provably sees the same bids.  Footnote 1
covers the other world: point-to-point networks where a cheater can
whisper different bids to different peers ("split bids"), poisoning
honest processors' redundant computations.

This example runs the same split-bid attack over three transports and
shows what the footnote's hash commitments buy: detection moves from
"after we wasted compute" back to "before anyone lifts a finger".

Run:  python examples/untrusted_network.py
"""

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.analysis.reporting import format_table
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.network.messages import MessageKind

W = [2.0, 3.0, 5.0, 4.0]
Z = 0.4

ATTACK = {1: AgentBehavior(
    deviations={Deviation.SPLIT_BIDS},
    deviation_params={"victim": "P4", "split_bid_factor": 0.5})}


def run(mode, behaviors=None):
    return DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors=behaviors,
                    bidding_mode=mode).run()


def main() -> None:
    print("Attack: P2 tells P4 it bid 1.5 while telling everyone else 3.0\n")

    rows = []
    for mode, story in (
        ("atomic", "shared bus: one broadcast reaches all identically"),
        ("commit", "p2p + published hash commitments (footnote 1)"),
        ("naive", "p2p, nothing else"),
    ):
        out = run(mode, ATTACK)
        wasted = sum(out.costs.values())
        rows.append((
            mode,
            out.terminal_phase.name,
            ", ".join(out.fined) or "attack impossible",
            f"{wasted:.4f}",
            story,
        ))
    print(format_table(
        ("transport", "resolved in", "fined", "compute wasted", "why"),
        rows, title="One attack, three transports"))

    # The price of the defence: message counts for an honest engagement.
    print()
    traffic_rows = []
    for mode in ("atomic", "commit", "naive"):
        out = run(mode)
        traffic_rows.append((
            mode,
            out.traffic.by_kind[MessageKind.BID],
            out.traffic.by_kind[MessageKind.COMMITMENT],
        ))
    print(format_table(
        ("transport", "bid messages", "commitment messages"),
        traffic_rows,
        title=f"Honest-run bidding traffic (m={len(W)}): commitments cost "
              "m broadcasts and p2p costs m(m-1) bids"))

    print("\nMoral: atomic broadcast is doing real security work in the")
    print("protocol; when the network can't provide it, commitments restore")
    print("bidding-phase detection — for a quadratic traffic price.")


if __name__ == "__main__":
    main()
