#!/usr/bin/env python3
"""Survey: one workload, every supported network architecture.

The paper's future work asks how the mechanism extends to other
topologies.  This example takes one set of processors and schedules the
same divisible load on every substrate the library implements —
the three bus models, a star with heterogeneous links, a linear daisy
chain, a two-level tree — and a multiround variant, comparing makespans
and showing where each architecture's overhead comes from.

Run:  python examples/architecture_survey.py
"""

import networkx as nx
import numpy as np

from repro import BusNetwork, NetworkKind, allocate, makespan
from repro.analysis.reporting import format_table
from repro.dlt.architectures import (
    StarNetwork,
    allocate_linear,
    allocate_star,
    collapse_tree,
    linear_finish_times,
    star_best_order,
    star_makespan,
)
from repro.dlt.multiround import multiround_makespan

W = (2.0, 3.0, 5.0, 4.0)
Z = 0.5


def bus_rows():
    rows = []
    for kind in NetworkKind:
        net = BusNetwork(W, Z, kind)
        t = makespan(allocate(net), net)
        note = {
            NetworkKind.CP: "every worker pays a communication prefix",
            NetworkKind.NCP_FE: "originator computes from t=0 (front end)",
            NetworkKind.NCP_NFE: "originator serializes sends before computing",
        }[kind]
        rows.append((f"bus / {kind.value}", t, note))
    return rows


def star_row():
    # Same processors, but each on its own link: nearer nodes get
    # cheaper links.
    star = StarNetwork(W, (0.2, 0.4, 0.6, 0.8))
    t = star_makespan(allocate_star(star), star)
    order, best, worst = star_best_order(star)
    return [("star (heterogeneous links)", t,
             f"order matters here: best {best:.4f} vs worst {worst:.4f}")]


def chain_row():
    a = allocate_linear(W, Z)
    t = float(linear_finish_times(a, W, Z)[0])
    return [("linear daisy chain", t, "store-and-forward hops accumulate")]


def tree_row():
    g = nx.DiGraph()
    g.add_node("P1", w=W[0])
    g.add_node("P2", w=W[1])
    g.add_node("P3", w=W[2])
    g.add_node("P4", w=W[3])
    g.add_edge("P1", "P2", z=Z)
    g.add_edge("P1", "P3", z=Z)
    g.add_edge("P2", "P4", z=Z)
    eq = collapse_tree(g, "P1")
    return [("two-level tree", eq.w_equivalent,
             "equivalent-processor collapse (w_eq = unit-load makespan)")]


def multiround_row():
    net = BusNetwork(W, Z, NetworkKind.CP)
    r = multiround_makespan(net, 8)
    return [("bus / cp + 8 installments", r.makespan,
             f"pipelining hides comm: {r.speedup:.3f}x over single round")]


def main() -> None:
    print(f"Processors w={list(W)}, base communication rate z={Z}\n")
    rows = bus_rows() + multiround_row() + star_row() + chain_row() + tree_row()
    print(format_table(("architecture", "makespan (unit load)", "note"), rows,
                       title="One workload, every architecture"))

    print("\nTakeaways:")
    print(" * a computing originator (NCP) always beats a pure distributor (CP)")
    print(" * multiround recovers most of CP's communication overhead")
    print(" * on stars, service order matters (Theorem 2.2 is bus-specific)")
    print(" * chains trade bus contention for store-and-forward latency")
    print(" * trees collapse recursively into one equivalent processor, the")
    print("   building block for mechanism design on hierarchical platforms")


if __name__ == "__main__":
    main()
