"""Smoke tests: every example script must run clean and say what it claims.

Examples rot silently when APIs move; running each as a subprocess (the
way a user would) keeps them honest.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Classical DLT" in out
        assert "DLS-BL-NCP" in out
        assert "no fines: True" in out

    def test_strategic_market(self):
        out = run_example("strategic_market.py")
        assert "everyone honest" in out
        assert "TERMINATED" in out
        assert "fined" in out

    def test_architecture_survey(self):
        out = run_example("architecture_survey.py")
        for arch in ("bus / cp", "star", "linear daisy chain", "tree"):
            assert arch in out

    def test_truthfulness_audit_default(self):
        out = run_example("truthfulness_audit.py")
        assert "AUDIT PASSED" in out

    def test_truthfulness_audit_custom_cluster(self):
        out = run_example("truthfulness_audit.py", "0.3", "2", "3", "5")
        assert "AUDIT PASSED" in out

    def test_market_over_time(self):
        out = run_example("market_over_time.py")
        assert "Permanent gap" in out
        assert "Cumulative utility race" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "Q1" in out and "Q2" in out and "Q3" in out
        assert "guarantees hold" in out

    def test_untrusted_network(self):
        out = run_example("untrusted_network.py")
        assert "attack impossible" in out
        assert "BIDDING" in out and "ALLOCATING_LOAD" in out

    @pytest.mark.slow
    def test_reproduce_paper(self, tmp_path):
        # Runs the whole benchmark harness (~30 s): keep it last.
        out = run_example("reproduce_paper.py")
        assert "Collated" in out
        report = EXAMPLES.parent / "REPRODUCTION_REPORT.md"
        assert report.exists()
        text = report.read_text()
        assert "Reproduction report" in text
        assert "test_thm21" in text

    def test_every_example_has_a_test(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py", "strategic_market.py", "architecture_survey.py",
            "truthfulness_audit.py", "market_over_time.py",
            "capacity_planning.py", "untrusted_network.py",
            "reproduce_paper.py",
        }
        assert scripts == covered, f"untested examples: {scripts - covered}"
