"""The README's Python snippets must actually run.

Documentation rot is the fastest way to lose adopters: every fenced
``python`` block in README.md is executed here in a shared namespace
(mirroring a reader following along top to bottom).
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_snippets():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python snippets?"
    return blocks


class TestReadmeSnippets:
    def test_all_python_blocks_execute(self):
        namespace: dict = {}
        for i, block in enumerate(python_snippets()):
            try:
                exec(compile(block, f"README.md:block{i}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"README python block {i} failed: {exc}\n{block}")

    def test_snippets_tell_the_truth(self):
        # Re-run and verify the claims the comments make.
        namespace: dict = {}
        for block in python_snippets():
            exec(block, namespace)
        outcome = namespace.get("outcome")
        assert outcome is not None
        # the last snippet's outcome: P3 crashes mid-Processing and the
        # run degrades instead of dying
        assert outcome.completed and outcome.degraded
        assert outcome.crashed == ("P3",)
        assert set(outcome.reallocations) == {"P1", "P2", "P4"}
        assert abs(sum(outcome.balances.values())) < 1e-9
        from repro.protocol.phases import Phase

        assert outcome.terminal_phase is Phase.COMPLETE
