"""Tests for the finishing-time equations (1)-(3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import (
    communication_finish_times,
    finish_times,
    makespan,
    optimal_makespan,
)
from tests.conftest import network_strategy


def cp_net(w, z=0.5):
    return BusNetwork(tuple(w), z, NetworkKind.CP)


class TestEquationOne:
    """Eq (1): T_i = z * sum_{j<=i} alpha_j + alpha_i w_i."""

    def test_explicit(self):
        net = cp_net([2.0, 4.0], z=1.0)
        a = np.array([0.6, 0.4])
        T = finish_times(a, net)
        assert T[0] == pytest.approx(1.0 * 0.6 + 0.6 * 2.0)
        assert T[1] == pytest.approx(1.0 * (0.6 + 0.4) + 0.4 * 4.0)

    def test_every_worker_pays_comm_prefix(self):
        net = cp_net([1.0, 1.0, 1.0], z=2.0)
        a = np.array([1 / 3] * 3)
        ready = communication_finish_times(a, net)
        assert ready == pytest.approx([2 / 3, 4 / 3, 2.0])


class TestEquationTwo:
    """Eq (2): P1 computes from t=0; comm starts with alpha_2."""

    def test_p1_no_delay(self):
        net = BusNetwork((2.0, 4.0, 3.0), 1.0, NetworkKind.NCP_FE)
        a = np.array([0.5, 0.3, 0.2])
        T = finish_times(a, net)
        assert T[0] == pytest.approx(0.5 * 2.0)  # alpha_1 w_1 only

    def test_comm_prefix_excludes_alpha1(self):
        net = BusNetwork((2.0, 4.0, 3.0), 1.0, NetworkKind.NCP_FE)
        a = np.array([0.5, 0.3, 0.2])
        T = finish_times(a, net)
        assert T[1] == pytest.approx(1.0 * 0.3 + 0.3 * 4.0)
        assert T[2] == pytest.approx(1.0 * (0.3 + 0.2) + 0.2 * 3.0)

    def test_recursion_seven_holds_at_optimum(self):
        net = BusNetwork((2.0, 4.0, 3.0), 0.6, NetworkKind.NCP_FE)
        a = allocate(net)
        T = finish_times(a, net)
        assert np.allclose(T, T[0])


class TestEquationThree:
    """Eq (3): P_m computes after all its transmissions, receives nothing."""

    def test_originator_waits_for_all_sends(self):
        net = BusNetwork((2.0, 4.0, 3.0), 1.0, NetworkKind.NCP_NFE)
        a = np.array([0.4, 0.3, 0.3])
        T = finish_times(a, net)
        # P3 starts after sending alpha_1 + alpha_2
        assert T[2] == pytest.approx(1.0 * 0.7 + 0.3 * 3.0)
        # Others pay their own reception prefix
        assert T[0] == pytest.approx(1.0 * 0.4 + 0.4 * 2.0)
        assert T[1] == pytest.approx(1.0 * 0.7 + 0.3 * 4.0)

    def test_recursions_hold_at_optimum(self):
        net = BusNetwork((2.0, 4.0, 3.0, 6.0), 0.8, NetworkKind.NCP_NFE)
        a = allocate(net)
        T = finish_times(a, net)
        assert np.allclose(T, T[0])


class TestMixedEvaluation:
    def test_w_exec_overrides_processing_only(self, kind):
        net = BusNetwork((2.0, 4.0), 0.5, kind)
        a = np.array([0.5, 0.5])
        base = finish_times(a, net)
        slowed = finish_times(a, net, w_exec=[2.0, 8.0])
        # Communication part unchanged; P2's compute doubled.
        assert slowed[0] == pytest.approx(base[0])
        assert slowed[1] == pytest.approx(base[1] + 0.5 * 4.0)

    def test_w_exec_validation(self, kind):
        net = BusNetwork((2.0, 4.0), 0.5, kind)
        a = np.array([0.5, 0.5])
        with pytest.raises(ValueError):
            finish_times(a, net, w_exec=[2.0])
        with pytest.raises(ValueError):
            finish_times(a, net, w_exec=[2.0, -1.0])


class TestMakespan:
    def test_is_max_of_finish_times(self, kind):
        net = BusNetwork((2.0, 4.0, 3.0), 0.5, kind)
        a = np.array([0.2, 0.5, 0.3])
        assert makespan(a, net) == pytest.approx(float(np.max(finish_times(a, net))))

    def test_optimal_makespan_matches_allocate(self, kind):
        net = BusNetwork((2.0, 4.0, 3.0), 0.5, kind)
        assert optimal_makespan(net) == pytest.approx(makespan(allocate(net), net))

    def test_alpha_validation(self, kind):
        net = BusNetwork((2.0, 4.0), 0.5, kind)
        with pytest.raises(ValueError):
            finish_times([0.5], net)
        with pytest.raises(ValueError):
            finish_times([-0.1, 1.1], net)


class TestCrossSystemRelations:
    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=100, deadline=None)
    def test_slowing_any_processor_never_helps(self, net):
        a = allocate(net)
        base = makespan(a, net)
        w_slow = np.asarray(net.w) * 1.5
        assert makespan(a, net, w_exec=w_slow) >= base - 1e-12

    def test_ncp_systems_beat_cp_on_same_instance(self):
        # A computing originator strictly dominates the CP system: with
        # the *same* allocation, every NCP-FE finish time drops by
        # z*alpha_1 versus CP, and NCP-NFE's originator saves its own
        # reception delay, so both optima are <= the CP optimum.
        # (NCP-FE vs NCP-NFE is *not* ordered in general: the originator
        # role lands on different processors.)
        rng = np.random.default_rng(5)
        for _ in range(20):
            w = tuple(rng.uniform(1, 10, 5))
            z = float(rng.uniform(0.1, 2.0))
            t = {k: optimal_makespan(BusNetwork(w, z, k)) for k in NetworkKind}
            assert t[NetworkKind.NCP_FE] <= t[NetworkKind.CP] + 1e-12
            assert t[NetworkKind.NCP_NFE] <= t[NetworkKind.CP] + 1e-12

    def test_zero_comm_limit_equalizes_kinds(self):
        # As z -> 0 the three models converge to the same makespan
        # 1 / sum(1/w_i) (pure processor-sharing bound).
        w = (2.0, 3.0, 6.0)
        bound = 1.0 / sum(1.0 / x for x in w)
        for kind in NetworkKind:
            t = optimal_makespan(BusNetwork(w, 1e-9, kind))
            assert t == pytest.approx(bound, rel=1e-6)
