"""Property-based verification of the closed-form optimality invariants.

Section 2's optimality principle, exercised over randomly drawn
instances in the classical regime (``z < min(w)``) rather than
hand-picked examples:

* the optimal allocation is a distribution (mass conservation);
* every processor participates with a strictly positive share;
* all participants finish simultaneously (the defining property of the
  optimum — Theorem 2.1);
* the optimal makespan is monotone in every per-unit time: slowing any
  processor, or the bus, never helps.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import finish_times, optimal_makespan
from tests.conftest import regime_network_strategy


class TestAllocationIsDistribution:
    @given(regime_network_strategy(min_m=1, max_m=10))
    def test_mass_conserved(self, net):
        assert abs(float(np.sum(allocate(net))) - 1.0) < 1e-12

    @given(regime_network_strategy(min_m=1, max_m=10))
    def test_strictly_positive(self, net):
        # In the regime every processor is worth using (Theorem 2.1's
        # participation premise): no share collapses to zero.
        assert np.all(allocate(net) > 0.0)

    @given(regime_network_strategy(min_m=2, max_m=10))
    def test_finite_and_bounded(self, net):
        alpha = allocate(net)
        assert np.all(np.isfinite(alpha))
        assert np.all(alpha <= 1.0 + 1e-12)


class TestSimultaneousFinish:
    @given(regime_network_strategy(min_m=2, max_m=10))
    def test_all_processors_finish_together(self, net):
        T = finish_times(allocate(net), net)
        np.testing.assert_allclose(T, T[0], rtol=1e-8, atol=1e-10)

    @given(regime_network_strategy(min_m=2, max_m=8),
           st.floats(min_value=0.01, max_value=0.2))
    def test_perturbation_breaks_simultaneity_and_optimality(self, net, shift):
        # Moving mass between two processors both desynchronizes the
        # finish times and (weakly) worsens the makespan — simultaneity
        # is not incidental; it is what optimality looks like here.
        alpha = allocate(net)
        moved = alpha.copy()
        delta = shift * min(alpha[0], alpha[-1])
        moved[0] += delta
        moved[-1] -= delta
        T_opt = float(np.max(finish_times(alpha, net)))
        T_moved = float(np.max(finish_times(moved, net)))
        assert T_moved >= T_opt - 1e-10


class TestMakespanMonotonicity:
    @given(regime_network_strategy(min_m=1, max_m=8),
           st.integers(min_value=0, max_value=7),
           st.floats(min_value=1.05, max_value=3.0))
    def test_monotone_in_each_w(self, net, which, factor):
        # Slowing processor i (others fixed) cannot shrink the optimal
        # makespan.  min(w) only grows, so the instance stays in regime.
        i = which % net.m
        slower = list(net.w)
        slower[i] *= factor
        worse = BusNetwork(tuple(slower), net.z, net.kind)
        assert optimal_makespan(worse) >= optimal_makespan(net) * (1 - 1e-10)

    @given(regime_network_strategy(min_m=1, max_m=8),
           st.floats(min_value=1.05, max_value=1.2))
    def test_monotone_in_z(self, net, factor):
        # A slower bus never helps.  The strategy draws z <= 0.8 min(w),
        # so scaling by <= 1.2 keeps z < min(w) — still in regime.
        worse = BusNetwork(net.w, net.z * factor, net.kind)
        assert optimal_makespan(worse) >= optimal_makespan(net) * (1 - 1e-10)

    @given(regime_network_strategy(
        kinds=(NetworkKind.CP, NetworkKind.NCP_FE), min_m=2, max_m=8))
    @settings(max_examples=50)
    def test_extra_processor_never_hurts(self, net):
        # Dropping the last processor (re-solving the smaller instance)
        # cannot beat the full market: the larger instance can always
        # emulate it with a zero share.  CP/NCP-FE only — in NCP-NFE the
        # last processor is the *originator*, so dropping it re-roots
        # the network and a slow originator can genuinely be a burden.
        smaller = BusNetwork(net.w[:-1], net.z, net.kind)
        assert optimal_makespan(net) <= optimal_makespan(smaller) * (1 + 1e-10)
