"""Theorem 2.1: the closed form is optimal (certified by independent baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.closed_form import allocate
from repro.dlt.optimality import (
    all_participate,
    grid_refine_allocation,
    lp_optimal_allocation,
    simultaneous_finish_residual,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import makespan
from tests.conftest import network_strategy, regime_network_strategy


class TestLpBaseline:
    @given(regime_network_strategy(min_m=1, max_m=10))
    @settings(max_examples=100, deadline=None)
    def test_lp_matches_closed_form(self, net):
        alpha_cf = allocate(net)
        t_cf = makespan(alpha_cf, net)
        alpha_lp, t_lp = lp_optimal_allocation(net)
        assert t_lp == pytest.approx(t_cf, rel=1e-7)
        assert np.allclose(alpha_lp, alpha_cf, atol=1e-6)

    @given(network_strategy(kinds=(NetworkKind.CP, NetworkKind.NCP_FE),
                            min_m=1, max_m=10))
    @settings(max_examples=100, deadline=None)
    def test_lp_matches_closed_form_any_z_for_cp_and_fe(self, net):
        # Full participation is optimal for CP and NCP-FE at *any* z
        # (the bus always has trailing idle time to slot another
        # transfer into); only NCP-NFE needs the z < w_m regime.
        alpha_cf = allocate(net)
        _, t_lp = lp_optimal_allocation(net)
        assert t_lp == pytest.approx(makespan(alpha_cf, net), rel=1e-7)

    def test_nfe_regime_boundary(self):
        # For NCP-NFE with z >= w_m, shipping load costs the originator
        # more than computing it: the optimum leaves the equal-finish
        # interior and the closed form (Algorithm 2.2) is no longer
        # optimal.  This documents the theorem's implicit regime.
        w = (1.0, 1.0)
        inside = BusNetwork(w, 0.9, NetworkKind.NCP_NFE)   # z <  w_m
        outside = BusNetwork(w, 2.0, NetworkKind.NCP_NFE)  # z >  w_m
        _, t_in = lp_optimal_allocation(inside)
        assert t_in == pytest.approx(makespan(allocate(inside), inside), rel=1e-9)
        alpha_out, t_out = lp_optimal_allocation(outside)
        assert t_out < makespan(allocate(outside), outside) - 1e-6
        # The LP optimum degenerates to "originator keeps everything".
        assert alpha_out[-1] == pytest.approx(1.0, abs=1e-9)

    def test_lp_allocation_feasible(self):
        net = BusNetwork((2.0, 5.0, 3.0), 0.7, NetworkKind.NCP_NFE)
        alpha, t = lp_optimal_allocation(net)
        assert alpha.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(alpha >= -1e-12)
        assert makespan(np.clip(alpha, 0, None), net) == pytest.approx(t, rel=1e-9)


class TestGridBaseline:
    def test_grid_converges_near_closed_form(self, kind):
        net = BusNetwork((2.0, 5.0, 3.0), 0.7, kind)
        t_cf = makespan(allocate(net), net)
        _, t_grid = grid_refine_allocation(net)
        # Derivative-free search is approximate; it must get close and
        # can never beat the true optimum.
        assert t_grid >= t_cf - 1e-12
        assert t_grid <= t_cf * 1.02


class TestTheorem21:
    @given(network_strategy(min_m=1, max_m=10))
    @settings(max_examples=100, deadline=None)
    def test_simultaneous_finish_at_optimum(self, net):
        assert simultaneous_finish_residual(allocate(net), net) < 1e-9

    @given(network_strategy(min_m=1, max_m=10))
    @settings(max_examples=100, deadline=None)
    def test_all_processors_participate(self, net):
        assert all_participate(allocate(net))

    def test_residual_positive_off_optimum(self):
        net = BusNetwork((2.0, 5.0), 0.7, NetworkKind.CP)
        assert simultaneous_finish_residual([0.9, 0.1], net) > 0.01

    def test_perturbation_never_improves(self, kind, rng):
        # Local optimality: random feasible perturbations of the
        # closed-form allocation never reduce the makespan.
        net = BusNetwork(tuple(rng.uniform(1, 10, 6)), 0.5, kind)
        a = allocate(net)
        base = makespan(a, net)
        for _ in range(200):
            d = rng.normal(0, 0.01, 6)
            d -= d.mean()  # keep sum(alpha) = 1
            cand = a + d
            if np.any(cand < 0):
                continue
            assert makespan(cand, net) >= base - 1e-12
