"""Tests for the multi-installment scheduling extension."""

import numpy as np
import pytest

from repro.dlt.multiround import multiround_makespan, round_sweep
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import optimal_makespan


class TestSingleRoundEquivalence:
    def test_one_round_equals_closed_form(self, kind, rng):
        # The pipelined simulator with R=1 must reproduce Eqs (1)-(3).
        for _ in range(10):
            net = BusNetwork(tuple(rng.uniform(1, 10, 5)), float(rng.uniform(0.1, 2)), kind)
            res = multiround_makespan(net, 1)
            assert res.makespan == pytest.approx(optimal_makespan(net), rel=1e-9)


class TestMultiround:
    def test_never_worse_than_single_round_cp(self, rng):
        for _ in range(10):
            net = BusNetwork(tuple(rng.uniform(1, 10, 5)), 1.0, NetworkKind.CP)
            res = multiround_makespan(net, 8)
            assert res.makespan <= res.single_round_makespan + 1e-9

    def test_improves_comm_bound_instances(self):
        # Large z makes reception the bottleneck; splitting installments
        # lets later workers start much earlier.
        net = BusNetwork((2.0, 2.0, 2.0, 2.0), 2.0, NetworkKind.CP)
        res = multiround_makespan(net, 8)
        assert res.speedup > 1.05

    def test_diminishing_returns(self):
        net = BusNetwork((2.0, 2.0, 2.0), 1.0, NetworkKind.CP)
        sweep = round_sweep(net, 12)
        gains = [sweep[i].makespan - sweep[i + 1].makespan for i in range(len(sweep) - 1)]
        # Early rounds buy much more than late rounds.
        assert gains[0] > gains[-1] - 1e-12

    def test_per_round_fractions_recorded(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        res = multiround_makespan(net, 3)
        assert len(res.per_round_alpha) == 3
        total = sum(sum(r) for r in res.per_round_alpha)
        assert total == pytest.approx(1.0)

    def test_rejects_zero_rounds(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            multiround_makespan(net, 0)

    def test_nfe_originator_still_waits_for_sends_each_round(self):
        # In NCP-NFE the originator cannot overlap: its first compute
        # start is >= the first round's total transmission time.
        net = BusNetwork((2.0, 2.0, 2.0), 1.0, NetworkKind.NCP_NFE)
        res = multiround_makespan(net, 4)
        assert res.makespan <= res.single_round_makespan + 1e-9

    def test_sweep_lengths(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        sweep = round_sweep(net, 5)
        assert [r.rounds for r in sweep] == [1, 2, 3, 4, 5]


class TestSimulateInstallments:
    def test_matches_equal_split_helper(self):
        from repro.dlt.multiround import simulate_installments

        net = BusNetwork((2.0, 3.0, 4.0), 1.0, NetworkKind.CP)
        t = simulate_installments(net, [0.25] * 4)
        assert t == pytest.approx(multiround_makespan(net, 4).makespan)

    def test_validates_gammas(self):
        from repro.dlt.multiround import simulate_installments

        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            simulate_installments(net, [0.5, 0.4])  # does not sum to 1
        with pytest.raises(ValueError):
            simulate_installments(net, [1.5, -0.5])


class TestOptimizedInstallments:
    def test_never_worse_than_equal_split(self, rng):
        from repro.dlt.multiround import optimize_installments

        for _ in range(5):
            net = BusNetwork(tuple(rng.uniform(1, 5, 4)),
                             float(rng.uniform(0.3, 2.0)), NetworkKind.CP)
            eq = multiround_makespan(net, 5)
            opt = optimize_installments(net, 5)
            assert opt.makespan <= eq.makespan + 1e-12

    def test_strict_improvement_on_balanced_instance(self):
        from repro.dlt.multiround import optimize_installments

        net = BusNetwork((2.0, 2.0, 2.0, 2.0), 0.5, NetworkKind.CP)
        eq = multiround_makespan(net, 6)
        opt = optimize_installments(net, 6)
        assert opt.makespan < eq.makespan * 0.99

    def test_single_round_passthrough(self):
        from repro.dlt.multiround import optimize_installments

        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        assert optimize_installments(net, 1).makespan == pytest.approx(
            multiround_makespan(net, 1).makespan)

    def test_gammas_sum_to_one(self):
        from repro.dlt.multiround import optimize_installments

        net = BusNetwork((2.0, 2.0, 2.0), 0.8, NetworkKind.CP)
        opt = optimize_installments(net, 4)
        total = sum(sum(r) for r in opt.per_round_alpha)
        assert total == pytest.approx(1.0, abs=1e-6)
