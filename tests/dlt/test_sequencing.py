"""Theorem 2.2: any allocation order is optimal on bus networks.

The order permutes the *receiving* processors; the originator slot is
positional (first for NCP-FE, last for NCP-NFE) and stays fixed — see
repro.dlt.sequencing's module docstring.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.sequencing import iter_orders, makespan_by_order, makespan_spread
from tests.conftest import network_strategy


class TestIterOrders:
    def test_exhaustive_when_small(self):
        orders = list(iter_orders(3))
        assert len(orders) == math.factorial(3)
        assert len(set(orders)) == len(orders)

    def test_fixed_position_respected(self):
        orders = list(iter_orders(4, fixed=3))
        assert len(orders) == math.factorial(3)
        assert all(o[3] == 3 for o in orders)

    def test_fixed_first_position(self):
        orders = list(iter_orders(4, fixed=0))
        assert all(o[0] == 0 for o in orders)
        assert len(orders) == math.factorial(3)

    def test_limit_caps_and_dedupes(self):
        orders = list(iter_orders(6, limit=10))
        assert len(orders) == 10
        assert len(set(orders)) == 10

    def test_limit_includes_identity(self):
        orders = list(iter_orders(5, limit=5))
        assert tuple(range(5)) in orders

    def test_limit_respects_fixed(self):
        orders = list(iter_orders(6, fixed=5, limit=12))
        assert all(o[5] == 5 for o in orders)

    def test_limit_above_factorial_goes_exhaustive(self):
        orders = list(iter_orders(3, limit=1000))
        assert len(orders) == 6


class TestTheorem22:
    @given(network_strategy(min_m=2, max_m=5))
    @settings(max_examples=60, deadline=None)
    def test_order_invariance_exhaustive(self, net):
        values = [t for _, t in makespan_by_order(net, limit=None)]
        assert max(values) - min(values) <= 1e-9 * max(values)

    def test_spread_is_tiny_for_larger_m(self, kind, rng):
        net = BusNetwork(tuple(rng.uniform(1, 10, 8)), 0.4, kind)
        assert makespan_spread(net, limit=40) < 1e-9

    def test_moving_the_originator_is_a_different_instance(self):
        # Swapping a processor into the NCP-FE originator slot changes
        # the makespan — which is why Theorem 2.2's orders keep the
        # originator fixed.
        net = BusNetwork((1.0, 0.5), 1.0, NetworkKind.NCP_FE)
        t_as_given = makespan_by_order(net, orders=[(0, 1)])[0][1]
        swapped = net.permuted([1, 0])
        t_swapped = makespan_by_order(swapped, orders=[(0, 1)])[0][1]
        assert abs(t_as_given - t_swapped) > 0.01

    def test_fractions_do_change_with_order(self):
        # The *makespan* is invariant but the individual fractions move:
        # the theorem is about the optimum value, not the allocation.
        net = BusNetwork((1.0, 9.0, 3.0), 0.8, NetworkKind.CP)
        a_fwd = allocate(net)
        a_rev = allocate(net.permuted([2, 1, 0]))
        assert not np.allclose(a_fwd, a_rev[::-1])

    def test_rows_report_every_requested_order(self):
        net = BusNetwork((1.0, 2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        orders = [(0, 1, 2), (0, 2, 1)]
        rows = makespan_by_order(net, orders=orders)
        assert [o for o, _ in rows] == orders
