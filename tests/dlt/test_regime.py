"""Tests for the regime diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.regime import (
    diagnose,
    nfe_in_regime,
    participation_is_optimal,
    regime_margin,
)
from tests.conftest import network_strategy


class TestAnalyticCheck:
    def test_cp_and_fe_always_in_regime(self):
        for kind in (NetworkKind.CP, NetworkKind.NCP_FE):
            net = BusNetwork((1.0, 1.0), 50.0, kind)
            assert nfe_in_regime(net)
            assert regime_margin(net) == float("inf")

    def test_nfe_boundary_at_w_m(self):
        inside = BusNetwork((1.0, 2.0), 1.9, NetworkKind.NCP_NFE)
        outside = BusNetwork((1.0, 2.0), 2.1, NetworkKind.NCP_NFE)
        assert nfe_in_regime(inside)
        assert not nfe_in_regime(outside)

    def test_margin_sign_and_scale(self):
        net = BusNetwork((1.0, 2.0), 1.0, NetworkKind.NCP_NFE)
        assert regime_margin(net) == pytest.approx(0.5)
        out = BusNetwork((1.0, 2.0), 3.0, NetworkKind.NCP_NFE)
        assert regime_margin(out) == pytest.approx(-0.5)


class TestGroundTruthAgreement:
    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_analytic_check_predicts_lp_for_m2_and_cp_fe(self, net):
        # For CP/NCP-FE (any m) and NCP-NFE with m=2 the analytic
        # condition is exact.  For larger NFE instances z >= w_m is
        # still necessary-for-violation, checked below.
        if net.kind is not NetworkKind.NCP_NFE or net.m == 2:
            if nfe_in_regime(net):
                assert participation_is_optimal(net)

    @given(network_strategy(kinds=(NetworkKind.NCP_NFE,), min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_out_of_regime_is_necessary_for_suboptimality(self, net):
        if not participation_is_optimal(net):
            assert not nfe_in_regime(net)


class TestDiagnose:
    def test_report_fields_consistent(self):
        net = BusNetwork((1.0, 1.0), 2.0, NetworkKind.NCP_NFE)
        rep = diagnose(net)
        assert not rep.in_regime
        assert not rep.closed_form_optimal
        assert rep.gap > 0
        assert not rep.mechanism_guarantees_hold

    def test_in_regime_report(self):
        net = BusNetwork((2.0, 3.0, 5.0), 0.5, NetworkKind.NCP_NFE)
        rep = diagnose(net)
        assert rep.in_regime and rep.closed_form_optimal
        assert rep.gap == pytest.approx(0.0, abs=1e-9)
        assert rep.mechanism_guarantees_hold

    def test_cp_always_guaranteed(self):
        net = BusNetwork((2.0, 3.0), 5.0, NetworkKind.CP)
        assert diagnose(net).mechanism_guarantees_hold
