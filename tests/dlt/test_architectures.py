"""Tests for the star / linear / tree extensions (paper future work)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.architectures import (
    StarNetwork,
    allocate_linear,
    allocate_star,
    allocate_tree,
    collapse_tree,
    linear_finish_times,
    star_best_order,
    star_finish_times,
    star_makespan,
)
from repro.dlt.closed_form import allocate_cp
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import finish_times as bus_finish_times


class TestStarNetwork:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            StarNetwork((1.0, 2.0), (0.5,))
        with pytest.raises(ValueError):
            StarNetwork((1.0, -2.0), (0.5, 0.5))

    def test_homogeneous_star_reduces_to_cp_bus(self):
        # With z_i == z for all links, the star is exactly the CP bus.
        w = [2.0, 3.0, 5.0]
        z = 0.6
        star = StarNetwork(tuple(w), (z, z, z))
        a_star = allocate_star(star)
        a_bus = allocate_cp(np.array(w), z)
        assert np.allclose(a_star, a_bus)
        net = BusNetwork(tuple(w), z, NetworkKind.CP)
        assert np.allclose(star_finish_times(a_star, star),
                           bus_finish_times(a_bus, net))

    def test_simultaneous_finish(self):
        star = StarNetwork((2.0, 3.0, 5.0), (0.2, 0.9, 0.4))
        T = star_finish_times(allocate_star(star), star)
        assert np.allclose(T, T[0])

    def test_single_worker(self):
        star = StarNetwork((2.0,), (0.5,))
        assert allocate_star(star) == pytest.approx([1.0])

    @given(st.lists(st.floats(min_value=0.5, max_value=10), min_size=2, max_size=6),
           st.lists(st.floats(min_value=0.1, max_value=2), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_normalized_positive(self, w, z):
        n = min(len(w), len(z))
        star = StarNetwork(tuple(w[:n]), tuple(z[:n]))
        a = allocate_star(star)
        assert np.isclose(a.sum(), 1.0)
        assert np.all(a > 0)


class TestStarOrdering:
    def test_heterogeneous_links_break_theorem_22(self):
        # On a star with very different link speeds the service order
        # matters — the bus invariance (Thm 2.2) does not extend.
        star = StarNetwork((2.0, 2.0, 2.0), (0.1, 1.0, 3.0))
        _, best, worst = star_best_order(star)
        assert worst > best * 1.01

    def test_best_order_is_fastest_link_first(self):
        star = StarNetwork((2.0, 3.0, 2.5), (2.0, 0.2, 0.9))
        order, _, _ = star_best_order(star)
        z_served = [star.z[i] for i in order]
        assert z_served == sorted(z_served)

    def test_homogeneous_links_recover_invariance(self):
        star = StarNetwork((2.0, 5.0, 3.0), (0.5, 0.5, 0.5))
        _, best, worst = star_best_order(star)
        assert worst == pytest.approx(best, rel=1e-9)


class TestLinearChain:
    def test_equal_finish_conditions(self):
        w = [2.0, 3.0, 4.0, 5.0]
        z = 0.3
        a = allocate_linear(w, z)
        T = linear_finish_times(a, w, z)
        assert np.allclose(T, T[0])

    def test_normalized_positive(self):
        a = allocate_linear([2.0, 3.0, 4.0], 0.5)
        assert a.sum() == pytest.approx(1.0)
        assert np.all(a > 0)

    def test_single_processor(self):
        assert allocate_linear([2.0], 0.5) == pytest.approx([1.0])

    def test_zero_comm_limit_matches_processor_sharing(self):
        w = [2.0, 3.0, 6.0]
        a = allocate_linear(w, 1e-9)
        T = linear_finish_times(a, w, 1e-9)
        assert T[0] == pytest.approx(1.0 / sum(1.0 / x for x in w), rel=1e-6)

    def test_downstream_gets_less_with_expensive_links(self):
        # Forwarding costs accumulate: with homogeneous processors the
        # head of the chain must get more load than the tail.
        a = allocate_linear([2.0, 2.0, 2.0, 2.0], 1.0)
        assert np.all(np.diff(a) < 0)

    def test_rejects_bad_z(self):
        with pytest.raises(ValueError):
            allocate_linear([1.0, 2.0], 0.0)


def star_tree(w_root, children):
    """Helper: one-level tree == star with a computing root."""
    g = nx.DiGraph()
    g.add_node("root", w=w_root)
    for i, (z, w) in enumerate(children):
        g.add_node(f"c{i}", w=w)
        g.add_edge("root", f"c{i}", z=z)
    return g


class TestTree:
    def test_leaf_equivalent_is_its_own_w(self):
        g = nx.DiGraph()
        g.add_node("only", w=3.5)
        eq = collapse_tree(g, "only")
        assert eq.w_equivalent == pytest.approx(3.5)
        assert eq.size == 1

    def test_equivalent_faster_than_any_member(self):
        g = star_tree(4.0, [(0.5, 3.0), (0.3, 6.0)])
        eq = collapse_tree(g, "root")
        assert eq.w_equivalent < 3.0  # pooling beats the best single node
        assert eq.size == 3

    def test_collapse_is_recursive(self):
        # A two-level tree: collapsing the inner star first by hand must
        # match the recursive result.
        g = nx.DiGraph()
        g.add_node("r", w=4.0)
        g.add_node("m", w=3.0)
        g.add_node("l", w=2.0)
        g.add_edge("r", "m", z=0.4)
        g.add_edge("m", "l", z=0.2)
        inner = star_tree(3.0, [(0.2, 2.0)])
        w_m_eq = collapse_tree(inner, "root").w_equivalent
        outer = star_tree(4.0, [(0.4, w_m_eq)])
        expected = collapse_tree(outer, "root").w_equivalent
        assert collapse_tree(g, "r").w_equivalent == pytest.approx(expected)

    def test_allocate_tree_shares_sum_to_one(self):
        g = nx.DiGraph()
        g.add_node("r", w=4.0)
        for i, (z, w) in enumerate([(0.5, 3.0), (0.3, 6.0)]):
            g.add_node(f"c{i}", w=w)
            g.add_edge("r", f"c{i}", z=z)
        g.add_node("gc", w=2.0)
        g.add_edge("c0", "gc", z=0.2)
        shares = allocate_tree(g, "r")
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(v > 0 for v in shares.values())
        assert set(shares) == {"r", "c0", "c1", "gc"}

    def test_rejects_non_arborescence(self):
        g = nx.DiGraph()
        g.add_node("a", w=1.0)
        g.add_node("b", w=1.0)
        g.add_edge("a", "b", z=0.1)
        g.add_edge("b", "a", z=0.1)
        with pytest.raises(ValueError):
            collapse_tree(g, "a")

    def test_rejects_missing_root(self):
        g = nx.DiGraph()
        g.add_node("a", w=1.0)
        with pytest.raises(KeyError):
            collapse_tree(g, "zz")


class TestDisabledCollapse:
    """Relay semantics: disabled nodes forward but do not compute."""

    def two_level(self):
        g = nx.DiGraph()
        g.add_node("r", w=2.0)
        g.add_node("c", w=3.0)
        g.add_node("gc", w=4.0)
        g.add_edge("r", "c", z=0.3)
        g.add_edge("c", "gc", z=0.2)
        return g

    def test_disabled_root_is_pure_distributor(self):
        g = self.two_level()
        full = collapse_tree(g, "r").w_equivalent
        relay = collapse_tree(g, "r", disabled={"r"}).w_equivalent
        assert relay > full
        # The relay-root star over the single collapsed child equals
        # z + w_eq(child subtree).
        child_eq = collapse_tree(g.subgraph(["c", "gc"]).copy(), "c")
        assert relay == pytest.approx(0.3 + child_eq.w_equivalent)

    def test_disabled_middle_keeps_grandchild_reachable(self):
        g = self.two_level()
        relay = collapse_tree(g, "r", disabled={"c"}).w_equivalent
        full = collapse_tree(g, "r").w_equivalent
        assert full < relay < np.inf
        # The grandchild still contributes through the relay: better
        # than amputating the whole c-subtree (root alone).
        g_alone = g.copy()
        g_alone.remove_node("gc")
        g_alone.remove_node("c")
        root_alone = collapse_tree(g_alone, "r").w_equivalent
        assert relay < root_alone
        # The relayed subtree equals gc behind its own hop.
        assert relay == pytest.approx(
            collapse_tree(self._r_with_child_eq(0.3, 0.2 + 4.0), "r").w_equivalent)

    @staticmethod
    def _r_with_child_eq(z, w_eq):
        g = nx.DiGraph()
        g.add_node("r", w=2.0)
        g.add_node("x", w=w_eq)
        g.add_edge("r", "x", z=z)
        return g

    def test_disabled_leaf_rejected(self):
        g = self.two_level()
        with pytest.raises(ValueError, match="disabled leaf"):
            collapse_tree(g, "r", disabled={"gc"})

    def test_relay_chain_of_two(self):
        # Both interior nodes disabled: only the grandchild computes,
        # behind both hops: T = (z1 + z2 + w_gc) for unit load... the
        # hub one-port star degenerate case: single worker through two
        # sequential relays.
        g = self.two_level()
        t = collapse_tree(g, "r", disabled={"r", "c"}).w_equivalent
        assert t == pytest.approx(0.3 + 0.2 + 4.0)
