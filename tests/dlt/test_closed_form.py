"""Unit and property tests for Algorithms 2.1 / 2.2 and the CP solver."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.closed_form import (
    allocate,
    allocate_cp,
    allocate_ncp_fe,
    allocate_ncp_nfe,
    chain_ratios,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import network_strategy, w_values, z_values
from hypothesis import strategies as st


class TestChainRatios:
    def test_formula(self):
        # k_j = w_j / (z + w_{j+1})
        k = chain_ratios(np.array([2.0, 3.0, 5.0]), 1.0)
        assert k == pytest.approx([2.0 / 4.0, 3.0 / 6.0])

    def test_single_processor_empty(self):
        assert chain_ratios(np.array([2.0]), 1.0).size == 0


class TestAllocateNcpFe:
    def test_two_processors_by_hand(self):
        # alpha_1 w_1 = alpha_2 (z + w_2); alpha_1 + alpha_2 = 1
        # w=(2,3), z=1: alpha_2 = alpha_1/2 -> alpha = (2/3, 1/3)
        alpha = allocate_ncp_fe([2.0, 3.0], 1.0)
        assert alpha == pytest.approx([2 / 3, 1 / 3])

    def test_three_processors_recursion(self):
        w = np.array([2.0, 3.0, 4.0])
        z = 0.5
        a = allocate_ncp_fe(w, z)
        # Eq (7) pairwise
        for i in range(2):
            assert a[i] * w[i] == pytest.approx(a[i + 1] * (z + w[i + 1]))

    def test_homogeneous_fast_bus_near_uniform(self):
        # z -> 0 makes communication free; equal w should split evenly.
        a = allocate_ncp_fe([3.0] * 5, 1e-9)
        assert a == pytest.approx([0.2] * 5, abs=1e-6)

    def test_faster_processor_gets_more(self):
        a = allocate_ncp_fe([1.0, 10.0], 0.5)
        assert a[0] > a[1]

    def test_single_processor(self):
        assert allocate_ncp_fe([4.0], 1.0) == pytest.approx([1.0])

    def test_rejects_bad_z(self):
        with pytest.raises(ValueError):
            allocate_ncp_fe([1.0, 2.0], 0.0)

    def test_rejects_bad_w(self):
        with pytest.raises(ValueError):
            allocate_ncp_fe([1.0, -2.0], 0.5)


class TestAllocateNcpNfe:
    def test_two_processors_by_hand(self):
        # Eq (9): alpha_1 w_1 = alpha_2 w_2 -> alpha = (w2, w1)/(w1+w2)
        a = allocate_ncp_nfe([2.0, 3.0], 1.0)
        assert a == pytest.approx([3 / 5, 2 / 5])

    def test_recursions_8_and_9(self):
        w = np.array([2.0, 3.0, 4.0, 5.0])
        z = 0.7
        a = allocate_ncp_nfe(w, z)
        m = len(w)
        for i in range(m - 2):  # Eq (8)
            assert a[i] * w[i] == pytest.approx(a[i + 1] * (z + w[i + 1]))
        assert a[m - 2] * w[m - 2] == pytest.approx(a[m - 1] * w[m - 1])  # Eq (9)

    def test_last_link_ignores_z(self):
        # The originator's fraction depends on z only through the chain,
        # not through its own (non-existent) communication: with m=2 the
        # allocation is z-independent.
        a1 = allocate_ncp_nfe([2.0, 3.0], 0.1)
        a2 = allocate_ncp_nfe([2.0, 3.0], 10.0)
        assert a1 == pytest.approx(a2)

    def test_single_processor(self):
        assert allocate_ncp_nfe([4.0], 1.0) == pytest.approx([1.0])


class TestAllocateCp:
    def test_fractions_match_ncp_fe(self):
        # Same recursion (Eq. 7) => same fractions; only timings differ.
        w = [2.0, 3.0, 5.0, 4.0]
        assert allocate_cp(w, 0.5) == pytest.approx(allocate_ncp_fe(w, 0.5))


class TestDispatch:
    def test_allocate_dispatches_by_kind(self):
        w = (2.0, 3.0, 5.0)
        for kind, fn in [
            (NetworkKind.CP, allocate_cp),
            (NetworkKind.NCP_FE, allocate_ncp_fe),
            (NetworkKind.NCP_NFE, allocate_ncp_nfe),
        ]:
            net = BusNetwork(w, 0.5, kind)
            assert allocate(net) == pytest.approx(fn(np.array(w), 0.5))


class TestAllocationProperties:
    @given(network_strategy())
    @settings(max_examples=150, deadline=None)
    def test_fractions_normalized_and_positive(self, net):
        a = allocate(net)
        assert a.shape == (net.m,)
        assert np.all(a > 0)
        assert np.isclose(a.sum(), 1.0, rtol=0, atol=1e-12)

    @given(w_values(2, 8), z_values())
    @settings(max_examples=100, deadline=None)
    def test_fe_monotone_in_speed(self, w, z):
        # Making a processor strictly slower (larger w) never increases
        # its optimal fraction.
        a = allocate_ncp_fe(w, z)
        w2 = list(w)
        w2[0] = w2[0] * 2.0
        a2 = allocate_ncp_fe(w2, z)
        assert a2[0] <= a[0] + 1e-12

    @given(w_values(2, 8), z_values(), st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, w, z, s):
        # Scaling every w and z by the same factor rescales time but not
        # the optimal fractions.
        a = allocate_ncp_fe(w, z)
        b = allocate_ncp_fe([x * s for x in w], z * s)
        assert np.allclose(a, b, rtol=1e-9)

    def test_large_m_stays_normalized(self):
        rng = np.random.default_rng(3)
        w = rng.uniform(1, 10, size=2000)
        for fn in (allocate_ncp_fe, allocate_ncp_nfe):
            a = fn(w, 0.05)
            assert np.isclose(a.sum(), 1.0, atol=1e-9)
            assert np.all(a >= 0)

    def test_extreme_instances_fail_loudly(self):
        # The documented float64 domain boundary: chain products that
        # overflow raise ArithmeticError instead of returning NaNs.
        w = np.tile([1e200, 1e-200], 4)  # k alternates ~1e400 overflow
        with np.errstate(over="ignore", invalid="ignore"):
            with pytest.raises(ArithmeticError, match="degenerate"):
                allocate_ncp_fe(w, 1e-300)
