"""Tests for performance bounds and saturation limits."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.bounds import (
    communication_bound,
    lower_bound,
    processor_sharing_bound,
    saturation_limit,
    speedup,
    utilization,
)
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import optimal_makespan
from tests.conftest import network_strategy, regime_network_strategy


class TestLowerBounds:
    @given(network_strategy(min_m=1, max_m=10))
    @settings(max_examples=80, deadline=None)
    def test_processor_sharing_bound_holds(self, net):
        assert optimal_makespan(net) >= processor_sharing_bound(net) - 1e-12

    @given(network_strategy(kinds=(NetworkKind.CP,), min_m=1, max_m=10))
    @settings(max_examples=60, deadline=None)
    def test_cp_communication_bound_holds(self, net):
        assert optimal_makespan(net) >= net.z - 1e-12
        assert communication_bound(net) == net.z

    def test_lower_bound_is_the_tighter_one(self):
        # Slow workers, fast bus: sharing bound binds.
        slow = BusNetwork((10.0, 10.0), 0.01, NetworkKind.CP)
        assert lower_bound(slow) == pytest.approx(processor_sharing_bound(slow))
        # Fast workers, slow bus: communication binds.
        fast = BusNetwork((0.1, 0.1), 5.0, NetworkKind.CP)
        assert lower_bound(fast) == pytest.approx(5.0)

    def test_ncp_comm_bound_excludes_originator_share(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        alpha = allocate(net)
        assert communication_bound(net) == pytest.approx(0.5 * (1 - alpha[0]))


class TestSpeedup:
    @given(regime_network_strategy(min_m=2, max_m=10))
    @settings(max_examples=60, deadline=None)
    def test_speedup_at_least_one(self, net):
        assert speedup(net) >= 1.0 - 1e-12

    def test_speedup_grows_with_m_homogeneous(self):
        values = [speedup(BusNetwork((2.0,) * m, 0.1, NetworkKind.CP))
                  for m in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_speedup_bounded_by_saturation(self):
        # Homogeneous CP speedup cannot exceed (z + w) / z.
        w, z = 2.0, 0.5
        cap = (z + w) / z
        s = speedup(BusNetwork((w,) * 512, z, NetworkKind.CP))
        assert s <= cap + 1e-9


class TestUtilization:
    def test_fractions_in_unit_interval(self, kind):
        net = BusNetwork((2.0, 3.0, 5.0), 0.4, kind)
        u = utilization(allocate(net), net)
        assert np.all(u > 0) and np.all(u <= 1 + 1e-12)

    def test_fe_originator_fully_utilized(self):
        net = BusNetwork((2.0, 3.0, 5.0), 0.4, NetworkKind.NCP_FE)
        u = utilization(allocate(net), net)
        assert u[0] == pytest.approx(1.0)  # computes the entire makespan


class TestSaturation:
    def test_cp_limit_is_z(self):
        assert saturation_limit(2.0, 0.5, NetworkKind.CP) == pytest.approx(0.5)

    def test_fe_limit_is_wz_over_z_plus_w(self):
        w, z = 2.0, 0.5
        assert saturation_limit(w, z, NetworkKind.NCP_FE) == pytest.approx(
            w * z / (z + w))

    def test_nfe_limit_matches_cp(self):
        assert saturation_limit(2.0, 0.5, NetworkKind.NCP_NFE) == pytest.approx(
            saturation_limit(2.0, 0.5, NetworkKind.CP))

    def test_makespan_monotone_toward_limit(self):
        lim = saturation_limit(2.0, 0.5, NetworkKind.CP)
        prev = np.inf
        for m in (2, 8, 32, 128):
            t = optimal_makespan(BusNetwork((2.0,) * m, 0.5, NetworkKind.CP))
            assert t <= prev + 1e-12
            assert t >= lim - 1e-12
            prev = t

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            saturation_limit(0.0, 0.5, NetworkKind.CP)
