"""Tests for multi-job (queue) scheduling."""

import numpy as np
import pytest

from repro.dlt.multijob import (
    EXHAUSTIVE_CAP,
    JobSchedule,
    flow_time_by_order,
    local_search_order,
    schedule_jobs,
    sjf_order,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import optimal_makespan

NET = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.CP)


class TestScheduleJobs:
    def test_single_unit_job_matches_single_round(self, kind):
        net = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, kind)
        sched = schedule_jobs(net, [1.0])
        assert sched.makespan == pytest.approx(optimal_makespan(net))

    def test_load_scaling_is_linear_for_one_job(self):
        t1 = schedule_jobs(NET, [1.0]).makespan
        t3 = schedule_jobs(NET, [3.0]).makespan
        assert t3 == pytest.approx(3 * t1)

    def test_completions_are_nondecreasing(self):
        sched = schedule_jobs(NET, [1.0, 0.5, 2.0])
        assert list(sched.completions) == sorted(sched.completions)

    def test_pipelining_beats_sequential(self):
        # Running two jobs through the pipeline is faster than adding
        # two isolated makespans: job 2's comm hides under job 1's
        # compute tail.
        t1 = schedule_jobs(NET, [1.0]).makespan
        both = schedule_jobs(NET, [1.0, 1.0]).makespan
        assert both < 2 * t1 - 1e-9

    def test_validates_loads(self):
        with pytest.raises(ValueError):
            schedule_jobs(NET, [])
        with pytest.raises(ValueError):
            schedule_jobs(NET, [1.0, -2.0])


class TestOrderingEffects:
    LOADS = [3.0, 0.5, 1.5]

    def test_makespan_spread_is_modest(self):
        # Order changes how well the pipeline is primed, but the bulk of
        # the work is order-independent: the makespan spread stays
        # within ~10% while mean flow time varies by ~70%.
        rows = flow_time_by_order(NET, self.LOADS)
        makespans = [r[2] for r in rows]
        flows = [r[1] for r in rows]
        assert max(makespans) / min(makespans) < 1.15
        assert max(flows) / min(flows) > 1.5

    def test_sjf_minimizes_mean_flow_time(self):
        rows = flow_time_by_order(NET, self.LOADS)
        best_order = min(rows, key=lambda r: r[1])[0]
        assert list(best_order) == sjf_order(self.LOADS)

    def test_ljf_maximizes_mean_flow_time(self):
        rows = flow_time_by_order(NET, self.LOADS)
        worst_order = max(rows, key=lambda r: r[1])[0]
        assert list(worst_order) == list(reversed(sjf_order(self.LOADS)))

    def test_large_batches_sample_representatives(self):
        # Ascending input: FIFO == SJF, so dedup keeps 2 orders.
        rows = flow_time_by_order(NET, [1.0 * (i + 1) for i in range(9)])
        assert len(rows) == 2
        # Shuffled input: FIFO, SJF and LJF are all distinct.
        rows = flow_time_by_order(NET, [3.0, 1.0, 7.0, 2.0, 5.0, 4.0, 6.0,
                                        9.0, 8.0])
        assert len(rows) == 3


class TestSjfOrder:
    def test_orders_ascending(self):
        assert sjf_order([3.0, 0.5, 1.5]) == [1, 2, 0]


class TestLocalSearchOrder:
    def _flow(self, loads, order):
        return schedule_jobs(NET, [loads[i] for i in order]).mean_flow_time

    @pytest.mark.parametrize("loads", [
        [3.0, 0.5, 1.5],
        [1.0, 1.0, 1.0, 1.0],
        [2.0, 0.3, 4.0, 1.1, 0.7],
        [5.0, 0.2, 0.9, 3.3, 1.7, 2.4],
    ])
    def test_matches_exhaustive_optimum_at_small_n(self, loads):
        # The adjacent-swap descent must land on the true optimum for
        # every batch small enough to enumerate — the regime where we
        # can check it at all.
        rows = flow_time_by_order(NET, loads)
        import math

        assert len(rows) == math.factorial(len(loads))
        best = min(r[1] for r in rows)
        local = local_search_order(NET, loads)
        assert self._flow(loads, local) == pytest.approx(best)

    def test_never_worse_than_sjf(self):
        loads = [3.0, 1.0, 7.0, 2.0, 5.0, 4.0, 6.0, 9.0, 8.0, 0.5]
        local = local_search_order(NET, loads)
        assert self._flow(loads, local) <= self._flow(
            loads, sjf_order(loads)) + 1e-12
        assert sorted(local) == list(range(len(loads)))

    def test_exhaustive_cap_clamps_enumeration(self):
        # 9 jobs with exhaustive_limit=20: the cap (8) must win, so the
        # fallback heuristics run instead of 9! = 362880 schedules.
        loads = [1.0 * (i + 1) for i in range(EXHAUSTIVE_CAP + 1)]
        rows = flow_time_by_order(NET, loads, exhaustive_limit=20)
        assert len(rows) <= 4


class TestConsistencyWithInstallments:
    def test_unit_batch_equals_installments(self, kind):
        # A batch summing to 1 run through the job pipeline is the same
        # physical schedule as the multiround installment simulator
        # with those gammas: the last completion must coincide.
        from repro.dlt.multiround import simulate_installments

        net = BusNetwork((2.0, 3.0, 5.0), 0.4, kind)
        gammas = [0.5, 0.3, 0.2]
        t_jobs = schedule_jobs(net, gammas).makespan
        t_rounds = simulate_installments(net, gammas)
        assert t_jobs == pytest.approx(t_rounds)
