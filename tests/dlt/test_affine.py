"""Tests for the affine cost model extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.affine import (
    AffineBus,
    affine_finish_times,
    allocate_affine,
    optimal_cohort,
)
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import finish_times


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AffineBus((2.0,), 0.0)
        with pytest.raises(ValueError):
            AffineBus((2.0,), 0.5, s_c=-1.0)
        with pytest.raises(ValueError):
            AffineBus((2.0,), 0.5, load=0.0)
        with pytest.raises(ValueError):
            AffineBus((2.0,), 0.5, kind=NetworkKind.NCP_NFE)

    def test_prefix(self):
        bus = AffineBus((2.0, 3.0, 4.0), 0.5, s_c=0.1)
        assert bus.prefix(2).w == (2.0, 3.0)
        with pytest.raises(ValueError):
            bus.prefix(0)


class TestReductionToLinearModel:
    @given(st.lists(st.floats(min_value=0.5, max_value=20), min_size=1,
                    max_size=8),
           st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_zero_overheads_recover_linear_cp(self, w, z):
        affine = AffineBus(tuple(w), z, s_c=0.0, s_p=0.0, kind=NetworkKind.CP)
        linear = BusNetwork(tuple(w), z, NetworkKind.CP)
        a_aff = allocate_affine(affine)
        a_lin = allocate(linear)
        assert np.allclose(a_aff, a_lin)
        assert np.allclose(affine_finish_times(a_aff, affine),
                           finish_times(a_lin, linear))

    def test_zero_overheads_recover_linear_fe(self):
        w, z = (2.0, 3.0, 5.0), 0.4
        affine = AffineBus(w, z, kind=NetworkKind.NCP_FE)
        linear = BusNetwork(w, z, NetworkKind.NCP_FE)
        assert np.allclose(affine_finish_times(allocate_affine(affine), affine),
                           finish_times(allocate(linear), linear))


class TestEqualFinish:
    def test_simultaneous_finish_with_overheads(self):
        bus = AffineBus((2.0, 3.0, 5.0, 4.0), 0.5, s_c=0.05, s_p=0.1)
        T = affine_finish_times(allocate_affine(bus), bus)
        assert np.allclose(T, T[0])

    def test_recursion_holds(self):
        bus = AffineBus((2.0, 3.0, 4.0), 0.5, s_c=0.08, load=2.0)
        a = allocate_affine(bus)
        L = bus.load
        for i in range(2):
            assert L * a[i] * bus.w[i] == pytest.approx(
                bus.s_c + L * a[i + 1] * (bus.z + bus.w[i + 1]))

    def test_overheads_shift_load_to_early_processors(self):
        plain = AffineBus((2.0, 2.0, 2.0, 2.0), 0.5)
        loaded = AffineBus((2.0, 2.0, 2.0, 2.0), 0.5, s_c=0.2)
        a0 = allocate_affine(plain)
        a1 = allocate_affine(loaded)
        assert a1[0] > a0[0]
        assert a1[-1] < a0[-1]

    def test_infeasible_cohort_raises(self):
        # Huge startups on a tiny load: a large cohort cannot all get
        # positive shares.
        bus = AffineBus((1.0,) * 8, 0.5, s_c=5.0, load=0.1)
        with pytest.raises(ArithmeticError):
            allocate_affine(bus)


class TestOptimalCohort:
    def test_small_load_uses_few_processors(self):
        bus = AffineBus((1.0,) * 8, 0.2, s_c=0.3, s_p=0.1, load=0.5)
        size, alpha, t = optimal_cohort(bus)
        assert size < 8
        assert np.count_nonzero(alpha) == size

    def test_large_load_uses_everyone(self):
        bus = AffineBus((1.0,) * 8, 0.2, s_c=0.3, s_p=0.1, load=200.0)
        size, alpha, t = optimal_cohort(bus)
        assert size == 8

    def test_cohort_size_monotone_in_load(self):
        sizes = []
        for load in (0.2, 1.0, 5.0, 25.0, 125.0):
            bus = AffineBus((1.0,) * 8, 0.2, s_c=0.3, s_p=0.1, load=load)
            sizes.append(optimal_cohort(bus)[0])
        assert sizes == sorted(sizes)

    def test_zero_overhead_cohort_is_everyone(self):
        # Back in the linear model, Theorem 2.1 applies: full
        # participation for any load size.
        for load in (0.01, 1.0, 100.0):
            bus = AffineBus((2.0, 3.0, 5.0), 0.4, load=load)
            assert optimal_cohort(bus)[0] == 3

    def test_optimal_cohort_is_largest_feasible_prefix(self):
        # The classical structure: alpha_m hits zero exactly where the
        # m-th processor stops paying for its startup, so the optimal
        # cohort is the largest prefix with all-positive shares.
        bus = AffineBus((1.0,) * 8, 0.2, s_c=0.3, s_p=0.1, load=0.5)
        size, _, t_best = optimal_cohort(bus)
        assert size < 8
        # size is feasible, size+1 is not
        allocate_affine(bus.prefix(size))
        with pytest.raises(ArithmeticError):
            allocate_affine(bus.prefix(size + 1))

    def test_optimal_cohort_beats_smaller_cohorts(self):
        bus = AffineBus((1.0,) * 8, 0.2, s_c=0.3, s_p=0.1, load=0.5)
        size, _, t_best = optimal_cohort(bus)
        for smaller in range(1, size):
            sub = bus.prefix(smaller)
            t = float(np.max(affine_finish_times(allocate_affine(sub), sub)))
            assert t_best < t + 1e-12
