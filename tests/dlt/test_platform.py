"""Unit tests for the bus-network system models."""

import numpy as np
import pytest

from repro.dlt.platform import (
    BusNetwork,
    NetworkKind,
    Processor,
    random_network,
    validate_positive,
)


class TestValidatePositive:
    def test_accepts_positive_list(self):
        arr = validate_positive([1.0, 2.5, 3.0], "w")
        assert arr.dtype == float
        assert arr.tolist() == [1.0, 2.5, 3.0]

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            validate_positive([1.0, 0.0], "w")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="strictly positive"):
            validate_positive([-1.0], "w")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            validate_positive([1.0, float("nan")], "w")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            validate_positive([float("inf")], "w")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_positive([], "w")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            validate_positive(np.ones((2, 2)), "w")


class TestProcessor:
    def test_processing_time_is_linear(self):
        p = Processor("P1", 3.0)
        assert p.processing_time(0.5) == pytest.approx(1.5)
        assert p.processing_time(0.0) == 0.0

    def test_rejects_nonpositive_w(self):
        with pytest.raises(ValueError):
            Processor("P1", 0.0)
        with pytest.raises(ValueError):
            Processor("P1", -2.0)

    def test_is_frozen(self):
        p = Processor("P1", 3.0)
        with pytest.raises(AttributeError):
            p.w = 5.0


class TestNetworkKind:
    def test_cp_has_control_processor(self):
        assert NetworkKind.CP.has_control_processor
        assert not NetworkKind.NCP_FE.has_control_processor
        assert not NetworkKind.NCP_NFE.has_control_processor

    def test_front_end_flags(self):
        assert NetworkKind.CP.originator_has_front_end
        assert NetworkKind.NCP_FE.originator_has_front_end
        assert not NetworkKind.NCP_NFE.originator_has_front_end

    def test_originator_positions(self):
        assert NetworkKind.CP.originator_index(5) is None
        assert NetworkKind.NCP_FE.originator_index(5) == 0
        assert NetworkKind.NCP_NFE.originator_index(5) == 4


class TestBusNetwork:
    def test_basic_construction(self, kind):
        net = BusNetwork((2.0, 3.0), 0.5, kind)
        assert net.m == 2
        assert net.z == 0.5
        assert net.names == ("P1", "P2")

    def test_custom_names(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP, names=("a", "b"))
        assert net.names == ("a", "b")
        assert [p.name for p in net.processors] == ["a", "b"]

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP, names=("a", "a"))

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP, names=("a",))

    def test_rejects_nonpositive_z(self, kind):
        with pytest.raises(ValueError, match="z"):
            BusNetwork((2.0,), 0.0, kind)
        with pytest.raises(ValueError, match="z"):
            BusNetwork((2.0,), -1.0, kind)

    def test_rejects_bad_kind(self):
        with pytest.raises(TypeError):
            BusNetwork((2.0,), 0.5, "cp")

    def test_w_array_is_read_only(self):
        # The cached array refuses in-place writes, so a buggy consumer
        # fails loudly instead of corrupting every other caller's view.
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        arr = net.w_array
        with pytest.raises(ValueError):
            arr[0] = 99.0
        assert net.w == (2.0, 3.0)
        np.testing.assert_array_equal(arr.copy(), [2.0, 3.0])
        assert net.w_array is arr  # cached, not rebuilt per access

    def test_with_w_replaces_values_keeps_rest(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE, names=("x", "y"))
        net2 = net.with_w([4.0, 5.0])
        assert net2.w == (4.0, 5.0)
        assert net2.z == net.z and net2.kind == net.kind and net2.names == net.names
        assert net.w == (2.0, 3.0)  # original untouched

    def test_with_w_rejects_wrong_length(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            net.with_w([1.0])

    def test_without_removes_and_preserves_order(self):
        net = BusNetwork((2.0, 3.0, 5.0), 0.5, NetworkKind.NCP_FE)
        reduced = net.without(1)
        assert reduced.w == (2.0, 5.0)
        assert reduced.names == ("P1", "P3")
        assert reduced.m == 2

    def test_without_last_in_nfe_moves_originator(self):
        net = BusNetwork((2.0, 3.0, 5.0), 0.5, NetworkKind.NCP_NFE)
        assert net.originator_index == 2
        reduced = net.without(2)
        assert reduced.originator_index == 1  # new last processor

    def test_without_single_processor_fails(self):
        net = BusNetwork((2.0,), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            net.without(0)

    def test_without_bad_index(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(IndexError):
            net.without(5)

    def test_permuted(self):
        net = BusNetwork((2.0, 3.0, 5.0), 0.5, NetworkKind.CP)
        p = net.permuted([2, 0, 1])
        assert p.w == (5.0, 2.0, 3.0)
        assert p.names == ("P3", "P1", "P2")

    def test_permuted_rejects_non_permutation(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            net.permuted([0, 0])

    def test_originator_index_property(self):
        assert BusNetwork((1.0, 2.0), 0.5, NetworkKind.CP).originator_index is None
        assert BusNetwork((1.0, 2.0), 0.5, NetworkKind.NCP_FE).originator_index == 0
        assert BusNetwork((1.0, 2.0), 0.5, NetworkKind.NCP_NFE).originator_index == 1


class TestRandomNetwork:
    def test_shapes_and_ranges(self, rng, kind):
        net = random_network(7, kind, rng, w_low=2.0, w_high=3.0, z=0.7)
        assert net.m == 7
        assert all(2.0 <= w <= 3.0 for w in net.w)
        assert net.z == 0.7
        assert net.kind is kind

    def test_random_z_range(self, rng):
        net = random_network(3, NetworkKind.CP, rng, z_low=0.5, z_high=0.6)
        assert 0.5 <= net.z <= 0.6

    def test_rejects_m_zero(self, rng):
        with pytest.raises(ValueError):
            random_network(0, NetworkKind.CP, rng)

    def test_deterministic_for_fixed_seed(self, kind):
        a = random_network(5, kind, np.random.default_rng(7))
        b = random_network(5, kind, np.random.default_rng(7))
        assert a.w == b.w and a.z == b.z
