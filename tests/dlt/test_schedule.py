"""Tests for schedule construction (the Figures 1-3 data)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.schedule import Segment, build_schedule, render_gantt
from repro.dlt.timing import finish_times
from tests.conftest import network_strategy


class TestSegment:
    def test_duration(self):
        s = Segment("bus", "a1*z", 0, 1.0, 2.5)
        assert s.duration == pytest.approx(1.5)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Segment("bus", "x", 0, 2.0, 1.0)


class TestBuildSchedule:
    @given(network_strategy(min_m=1, max_m=8))
    @settings(max_examples=100, deadline=None)
    def test_schedule_agrees_with_equations(self, net):
        a = allocate(net)
        sched = build_schedule(a, net)
        assert np.allclose(sched.processor_finish_times(), finish_times(a, net))
        assert sched.makespan == pytest.approx(float(np.max(finish_times(a, net))))

    @given(network_strategy(min_m=1, max_m=8))
    @settings(max_examples=100, deadline=None)
    def test_one_port_bus_never_overlaps(self, net):
        sched = build_schedule(allocate(net), net)
        assert sched.bus_is_one_port()

    def test_cp_ships_every_fraction(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.CP)
        sched = build_schedule(allocate(net), net)
        assert len(sched.bus_segments) == 3

    def test_fe_skips_originator_fraction(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.NCP_FE)
        sched = build_schedule(allocate(net), net)
        assert len(sched.bus_segments) == 2
        assert all(s.processor != 0 for s in sched.bus_segments)

    def test_nfe_skips_last_fraction(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.NCP_NFE)
        sched = build_schedule(allocate(net), net)
        assert len(sched.bus_segments) == 2
        assert all(s.processor != 2 for s in sched.bus_segments)

    def test_fe_originator_starts_at_zero(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.NCP_FE)
        sched = build_schedule(allocate(net), net)
        p1 = [s for s in sched.compute_segments if s.processor == 0][0]
        assert p1.start == 0.0

    def test_nfe_originator_starts_after_all_sends(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.NCP_NFE)
        sched = build_schedule(allocate(net), net)
        last_send = max(s.end for s in sched.bus_segments)
        pm = [s for s in sched.compute_segments if s.processor == 2][0]
        assert pm.start == pytest.approx(last_send)

    def test_workers_start_exactly_at_reception(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.CP)
        sched = build_schedule(allocate(net), net)
        bus_end = {s.processor: s.end for s in sched.bus_segments}
        for c in sched.compute_segments:
            assert c.start == pytest.approx(bus_end[c.processor])

    def test_mixed_execution_stretches_compute_only(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        a = allocate(net)
        slow = build_schedule(a, net, w_exec=[2.0, 6.0])
        fast = build_schedule(a, net)
        assert slow.bus_segments == fast.bus_segments
        assert slow.compute_segments[1].duration == pytest.approx(
            2 * fast.compute_segments[1].duration)


class TestRenderGantt:
    def test_contains_all_rows(self):
        net = BusNetwork((2.0, 3.0, 4.0), 0.5, NetworkKind.NCP_FE)
        text = render_gantt(build_schedule(allocate(net), net))
        for name in ("bus", "P1", "P2", "P3"):
            assert name in text
        assert "T=" in text

    def test_empty_schedule(self):
        net = BusNetwork((2.0,), 0.5, NetworkKind.NCP_FE)
        sched = build_schedule([0.0], net)
        assert "empty" in render_gantt(sched)
