"""Fuzzing the protocol with random strategy profiles.

Instead of hand-picked scenarios, draw entire behaviour profiles at
random (bid factors, execution factors, deviations, abstentions,
silent observers) and assert the *global* invariants that must hold no
matter what the agents do:

* the run always terminates with a well-formed result;
* money is conserved (balances + escrow sum to zero);
* fines only ever hit processors whose behaviour carries a deviation
  flag (Lemma 5.2 — never an honest bystander);
* abstainers end at exactly zero;
* in completed runs, the settled payments match the referee's own
  recomputation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.core.fines import FinePolicy
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase

pytestmark = pytest.mark.slow

# Deviations a random fuzz profile may carry.  REFUSE_REMEDY is only
# meaningful combined with SHORT_ALLOCATION on the originator; it is
# exercised separately in the catalogue tests.
FUZZ_DEVIATIONS = [
    None,
    Deviation.MULTIPLE_BIDS,
    Deviation.SHORT_ALLOCATION,
    Deviation.OVER_ALLOCATION,
    Deviation.WRONG_PAYMENTS,
    Deviation.CONTRADICTORY_PAYMENTS,
    Deviation.FALSE_ALLOCATION_CLAIM,
    Deviation.FALSE_EQUIVOCATION_CLAIM,
    Deviation.SPLIT_BIDS,
    Deviation.SILENT_OBSERVER,
]


def behavior_strategy():
    return st.builds(
        lambda bf, ef, dev, abstain: AgentBehavior(
            bid_factor=bf,
            exec_factor=ef,
            abstain=abstain,
            deviations=frozenset([dev] if dev else []),
        ),
        st.floats(min_value=0.6, max_value=1.8),
        st.floats(min_value=1.0, max_value=1.8),
        st.sampled_from(FUZZ_DEVIATIONS),
        st.booleans(),
    )


def profile_strategy(min_m=2, max_m=6):
    return st.tuples(
        st.lists(st.floats(min_value=1.0, max_value=10.0),
                 min_size=min_m, max_size=max_m),
        st.lists(behavior_strategy(), min_size=min_m, max_size=max_m),
        st.sampled_from([NetworkKind.NCP_FE, NetworkKind.NCP_NFE]),
        st.floats(min_value=0.05, max_value=0.4),
        st.sampled_from(["atomic", "commit", "naive"]),
    ).map(lambda t: (t[0][: min(len(t[0]), len(t[1]))],
                     t[1][: min(len(t[0]), len(t[1]))], t[2],
                     t[3] * min(t[0][: min(len(t[0]), len(t[1]))]),
                     t[4]))


def run_profile(w, behaviors, kind, z, bidding_mode="atomic"):
    mech = DLSBLNCP(list(w), kind, z,
                    behaviors=list(behaviors), policy=FinePolicy(2.0),
                    bidding_mode=bidding_mode)
    return mech, mech.run()


class TestFuzzInvariants:
    @given(profile_strategy())
    @settings(max_examples=120, deadline=None)
    def test_always_terminates_well_formed(self, profile):
        w, behaviors, kind, z, mode = profile
        mech, out = run_profile(w, behaviors, kind, z, mode)
        assert out.terminal_phase in Phase
        assert set(out.order) == {f"P{i+1}" for i in range(len(w))}
        assert set(out.utilities) == set(out.order)
        assert all(np.isfinite(v) for v in out.utilities.values())

    @given(profile_strategy())
    @settings(max_examples=120, deadline=None)
    def test_money_conserved(self, profile):
        w, behaviors, kind, z, mode = profile
        mech, out = run_profile(w, behaviors, kind, z, mode)
        escrow = mech.engine.infra.balance("escrow")
        assert sum(out.balances.values()) + escrow == pytest.approx(0.0, abs=1e-9)
        assert escrow >= -1e-12

    @given(profile_strategy())
    @settings(max_examples=120, deadline=None)
    def test_fines_never_hit_clean_agents(self, profile):
        # Lemma 5.2 under arbitrary mixtures: a fined processor always
        # carries at least one deviation flag.  (SILENT_OBSERVER and
        # abstention are legal; they are never fined.)
        w, behaviors, kind, z, mode = profile
        mech, out = run_profile(w, behaviors, kind, z, mode)
        for name in out.fined:
            idx = out.order.index(name)
            devs = behaviors[idx].deviations - {Deviation.SILENT_OBSERVER}
            assert devs, (name, behaviors[idx])

    @given(profile_strategy())
    @settings(max_examples=120, deadline=None)
    def test_abstainers_end_at_zero(self, profile):
        w, behaviors, kind, z, mode = profile
        mech, out = run_profile(w, behaviors, kind, z, mode)
        for i, b in enumerate(behaviors):
            if b.abstain:
                name = f"P{i+1}"
                assert out.utilities[name] == 0.0
                assert out.balances[name] == 0.0

    @given(profile_strategy())
    @settings(max_examples=80, deadline=None)
    def test_completed_runs_settle_recomputed_payments(self, profile):
        from repro.core.payments import payments as compute_payments
        from repro.dlt.platform import BusNetwork

        w, behaviors, kind, z, mode = profile
        mech, out = run_profile(w, behaviors, kind, z, mode)
        if not out.completed or len(out.participants) < 2:
            return
        active = list(out.participants)
        bids = [out.bids[n] for n in active]
        agents = {a.name: a for a in mech.agents}
        w_exec = np.array([agents[n].exec_value for n in active])
        net = BusNetwork(tuple(bids), z, kind, tuple(active))
        q = compute_payments(net, w_exec)
        for name, qi in zip(active, q):
            assert out.payments[name] == pytest.approx(float(qi))
