"""Lemmas 5.1-5.2, Corollary 5.1, Theorem 5.1 over the full offence catalogue.

For every modeled deviation:

* the deviant is detected and fined (Lemma 5.2 forward direction);
* no one else is fined (Lemma 5.2 reverse direction);
* the deviant ends up strictly worse off than its honest counterfactual
  (Lemma 5.1 — with the paper's fine bound in force);
* nobody collects a reward in deviation-free runs (Corollary 5.1).
"""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.fines import FinePolicy
from repro.dlt.platform import NetworkKind
from tests.conftest import PROTO_W4 as W, run_protocol


def run(behaviors=None, kind=NetworkKind.NCP_FE, **kw):
    return run_protocol(kind, behaviors, **kw)


def originator_idx(kind):
    return 0 if kind is NetworkKind.NCP_FE else len(W) - 1


def deviation_cases(kind):
    """(case name, behaviors dict, expected fined name) per offence."""
    lo = originator_idx(kind)
    lo_name = f"P{lo + 1}"
    non_lo = 1 if lo != 1 else 2
    non_lo_name = f"P{non_lo + 1}"
    return [
        ("multiple-bids",
         {non_lo: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})},
         non_lo_name),
        ("short-allocation",
         {lo: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                            deviation_params={"victim": non_lo_name,
                                              "delta_blocks": 3})},
         lo_name),
        ("over-allocation",
         {lo: AgentBehavior(deviations={Deviation.OVER_ALLOCATION},
                            deviation_params={"victim": non_lo_name,
                                              "delta_blocks": 3})},
         lo_name),
        ("wrong-payments",
         {non_lo: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})},
         non_lo_name),
        ("contradictory-payments",
         {non_lo: AgentBehavior(deviations={Deviation.CONTRADICTORY_PAYMENTS})},
         non_lo_name),
        ("false-allocation-claim",
         {non_lo: AgentBehavior(deviations={Deviation.FALSE_ALLOCATION_CLAIM})},
         non_lo_name),
        ("false-equivocation-claim",
         {non_lo: AgentBehavior(deviations={Deviation.FALSE_EQUIVOCATION_CLAIM},
                                deviation_params={"victim": lo_name})},
         non_lo_name),
    ]


@pytest.mark.parametrize("kind", [NetworkKind.NCP_FE, NetworkKind.NCP_NFE],
                         ids=lambda k: k.value)
class TestLemma52:
    """Fines hit exactly the deviant."""

    def test_every_offence_detected_and_fined(self, kind):
        for case, behaviors, expected in deviation_cases(kind):
            out = run(behaviors, kind)
            assert list(out.fined) == [expected], case

    def test_no_fines_without_deviation(self, kind):
        out = run(kind=kind)
        assert out.fined == {}
        assert out.verdicts == ()

    def test_misreporting_is_not_an_offence(self, kind):
        # Lying about capacity is handled by payments, not fines.
        out = run({1: AgentBehavior(bid_factor=1.7)}, kind)
        assert out.fined == {}
        assert out.completed

    def test_slacking_is_not_an_offence(self, kind):
        out = run({2: AgentBehavior(exec_factor=1.7)}, kind)
        assert out.fined == {}
        assert out.completed


@pytest.mark.parametrize("kind", [NetworkKind.NCP_FE, NetworkKind.NCP_NFE],
                         ids=lambda k: k.value)
class TestLemma51:
    """With F >= sum of compensations, deviation never pays."""

    def test_deviant_worse_than_honest_counterfactual(self, kind):
        honest = run(kind=kind, policy=FinePolicy(2.0))
        for case, behaviors, expected in deviation_cases(kind):
            out = run(behaviors, kind, policy=FinePolicy(2.0))
            assert out.utilities[expected] < honest.utilities[expected], case

    def test_deviant_utility_strictly_negative(self, kind):
        # Stronger: the fine exceeds anything the deviant could earn, so
        # its net utility is below zero in every terminated case.
        for case, behaviors, expected in deviation_cases(kind):
            out = run(behaviors, kind, policy=FinePolicy(2.0))
            if not out.completed:
                assert out.utilities[expected] < 0, case


@pytest.mark.parametrize("kind", [NetworkKind.NCP_FE, NetworkKind.NCP_NFE],
                         ids=lambda k: k.value)
class TestCorollary51:
    """No rewards without a cheater."""

    def test_honest_run_pays_no_rewards(self, kind):
        out = run(kind=kind)
        for v in out.verdicts:
            assert not v.rewards
        # Balances == payments exactly; no informer income.
        for name in out.order:
            assert out.balances[name] == pytest.approx(out.payments[name])


@pytest.mark.parametrize("kind", [NetworkKind.NCP_FE, NetworkKind.NCP_NFE],
                         ids=lambda k: k.value)
class TestTheorem51:
    """Compliance: informers profit, so deviations get reported."""

    def test_informers_strictly_gain_from_reporting(self, kind):
        honest = run(kind=kind)
        for case, behaviors, expected in deviation_cases(kind):
            out = run(behaviors, kind)
            if out.completed:
                continue  # payment-phase offences settle with rewards below
            for name in out.order:
                if name == expected:
                    continue
                # Terminated runs: informers collect fine shares (plus
                # work compensation), never ending below zero.
                assert out.utilities[name] >= -1e-9, (case, name)

    def test_reward_share_positive_for_all_non_deviants(self, kind):
        out = run({1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}, kind)
        for name in out.order:
            if name == "P2":
                continue
            assert out.balances[name] > 0
