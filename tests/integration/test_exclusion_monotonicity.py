"""Exclusion monotonicity across every architecture.

Voluntary participation ultimately rests on one inequality: removing a
(truthful) processor never speeds the optimum up.  These property
tests pin that inequality per architecture, including the subtle
exclusion semantics (distributor originators, relay hubs, merged
hops) — if any of those semantics regress, this file is the tripwire.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dls_chain import chain_excluded_makespan
from repro.core.dls_star import star_excluded_makespan, star_optimal_makespan
from repro.core.dls_tree import tree_excluded_makespan
from repro.core.payments import excluded_optimal_makespan
from repro.dlt.architectures import (
    StarNetwork,
    allocate_linear,
    allocate_tree,
    linear_finish_times,
    tree_finish_times,
)
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import makespan
from tests.conftest import regime_network_strategy


class TestBusExclusion:
    @given(regime_network_strategy(min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_exclusion_never_faster(self, net):
        full = makespan(allocate(net), net)
        for i in range(net.m):
            assert excluded_optimal_makespan(net, i) >= full - 1e-10


class TestStarExclusion:
    @given(st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=2,
                    max_size=7),
           st.lists(st.floats(min_value=0.05, max_value=3.0), min_size=2,
                    max_size=7))
    @settings(max_examples=80, deadline=None)
    def test_exclusion_never_faster_any_links(self, w, z):
        n = min(len(w), len(z))
        star = StarNetwork(tuple(w[:n]), tuple(z[:n]))
        full = star_optimal_makespan(star)
        for i in range(star.m):
            assert star_excluded_makespan(star, i) >= full - 1e-10


class TestChainExclusion:
    @given(st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=2,
                    max_size=6),
           st.lists(st.floats(min_value=0.02, max_value=5.0), min_size=1,
                    max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_exclusion_never_faster_any_links(self, w, hops):
        m = min(len(w), len(hops) + 1)
        w = np.asarray(w[:m])
        hops = np.asarray(hops[: m - 1])
        alpha = allocate_linear(w, hops if m > 1 else 1.0)
        full = float(np.max(linear_finish_times(alpha, w,
                                                hops if m > 1 else 1.0)))
        for i in range(m):
            assert chain_excluded_makespan(w, hops, i) >= full - 1e-10


class TestTreeExclusion:
    @given(st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=2,
                    max_size=7),
           st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=1,
                    max_size=6),
           st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                    max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_exclusion_never_faster(self, ws, zs, parents):
        from repro.core.dls_tree import DLSTree

        n = min(len(ws), len(zs) + 1, len(parents) + 1)
        g = nx.DiGraph()
        names = [f"n{i}" for i in range(n)]
        g.add_node(names[0], w=ws[0])
        for i in range(1, n):
            g.add_node(names[i], w=ws[i])
            g.add_edge(names[parents[i - 1] % i], names[i], z=zs[i - 1])
        # Use the mechanism's canonicalized topology so full and
        # excluded values share the service-order convention.
        mech = DLSTree(g, names[0])
        tree = mech.topology
        shares = allocate_tree(tree, names[0])
        full = max(tree_finish_times(tree, names[0], shares).values())
        for node in names:
            assert (tree_excluded_makespan(tree, names[0], node)
                    >= full - 1e-10), node
