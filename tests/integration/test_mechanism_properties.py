"""End-to-end mechanism properties through the full distributed protocol.

These tests exercise Theorems 5.1-5.3 at the *protocol* level (bus,
signatures, referee), complementing the algebraic tests in
tests/core/: the distributed mechanism must exhibit the same incentive
structure as the centralized one it redundantly computes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.behaviors import AgentBehavior, misreport, slow_execution, truthful
from repro.core.dls_bl import DLSBL
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind


def ncp_instances():
    return st.tuples(
        st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=2, max_size=6),
        st.floats(min_value=0.05, max_value=0.45),
        st.sampled_from([NetworkKind.NCP_FE, NetworkKind.NCP_NFE]),
    )


class TestProtocolMatchesAlgebra:
    @given(ncp_instances())
    @settings(max_examples=40, deadline=None)
    def test_honest_protocol_settles_dls_bl_payments(self, inst):
        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        out = DLSBLNCP(w, kind, z).run()
        central = DLSBL(kind, z).truthful_run(w)
        assert out.completed
        for i, name in enumerate(out.order):
            assert out.payments[name] == pytest.approx(central.payments[i],
                                                       rel=1e-9, abs=1e-9)


class TestStrategyproofnessThroughProtocol:
    @given(ncp_instances(),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_misreporting_never_beats_truth(self, inst, i_raw, factor):
        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        i = i_raw % len(w)
        truth = DLSBLNCP(w, kind, z).run()
        lied = DLSBLNCP(w, kind, z, behaviors={i: misreport(factor)}).run()
        name = truth.order[i]
        assert lied.utilities[name] <= truth.utilities[name] + 1e-9

    @given(ncp_instances(),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=1.0, max_value=2.5))
    @settings(max_examples=40, deadline=None)
    def test_slacking_never_beats_full_speed(self, inst, i_raw, factor):
        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        i = i_raw % len(w)
        truth = DLSBLNCP(w, kind, z).run()
        slow = DLSBLNCP(w, kind, z, behaviors={i: slow_execution(factor)}).run()
        name = truth.order[i]
        assert slow.utilities[name] <= truth.utilities[name] + 1e-9


class TestStrategyproofnessAcrossTransports:
    @given(ncp_instances(),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.5, max_value=2.0),
           st.sampled_from(["commit", "naive"]))
    @settings(max_examples=30, deadline=None)
    def test_misreporting_never_beats_truth_p2p(self, inst, i_raw, factor,
                                                mode):
        # Incentives are transport-independent for *consistent* bids:
        # point-to-point delivery with or without commitments settles
        # the same payments, so misreporting stays dominated.
        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        i = i_raw % len(w)
        truth = DLSBLNCP(w, kind, z, bidding_mode=mode).run()
        lied = DLSBLNCP(w, kind, z, behaviors={i: misreport(factor)},
                        bidding_mode=mode).run()
        name = truth.order[i]
        assert lied.utilities[name] <= truth.utilities[name] + 1e-9


class TestVoluntaryParticipationThroughProtocol:
    @given(ncp_instances())
    @settings(max_examples=40, deadline=None)
    def test_truthful_agents_never_lose(self, inst):
        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        out = DLSBLNCP(w, kind, z).run()
        assert all(u >= -1e-9 for u in out.utilities.values())


class TestLedgerInvariants:
    @given(ncp_instances(),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_money_conserved_under_deviation(self, inst, deviant_raw):
        from repro.agents.behaviors import Deviation

        w_raw, frac, kind = inst
        w = list(np.asarray(w_raw))
        z = frac * min(w)
        i = deviant_raw % len(w)
        mech = DLSBLNCP(w, kind, z, behaviors={i: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        out = mech.run()
        # Every coin a deviant loses lands with a non-deviant (or stays
        # escrowed); nothing is minted.
        escrow = mech.engine.infra.balance("escrow")
        assert sum(out.balances.values()) + escrow == pytest.approx(0.0, abs=1e-9)
        assert escrow >= -1e-12
