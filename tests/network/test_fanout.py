"""Batched fan-out delivery: one queue event per fan-out.

The seed scheduled one event per recipient; :class:`FanOutDelivery`
carries the whole recipient list on a single event.  These tests pin
the per-recipient semantics that batching must preserve: detaching or
crashing one recipient drops only that recipient, the event is
cancelled only once nobody is left, and FaultyBus delay rules that
group recipients still deliver exactly once per survivor.
"""

import pytest

from repro.network.bus import Bus, FanOutDelivery
from repro.network.events import EventQueue
from repro.network.faults import FaultPlan, FaultyBus, MessageFault
from repro.network.messages import Message, MessageKind


def recorder():
    got = []
    return got, got.append


class TestFanOutDelivery:
    def make(self, recipients=("A", "B")):
        got_a, h_a = recorder()
        got_b, h_b = recorder()
        endpoints = {"A": h_a, "B": h_b}
        msg = Message(MessageKind.CLAIM, "S", tuple(recipients), {"x": 1})
        return FanOutDelivery(endpoints, msg, tuple(recipients)), got_a, got_b

    def test_delivers_to_every_recipient(self):
        delivery, got_a, got_b = self.make()
        delivery()
        assert len(got_a) == 1 and len(got_b) == 1
        assert got_a[0] is got_b[0] is delivery.msg

    def test_drop_removes_one_recipient_only(self):
        delivery, got_a, got_b = self.make()
        delivery.drop("A")
        delivery()
        assert got_a == [] and len(got_b) == 1

    def test_drop_is_idempotent(self):
        delivery, _, got_b = self.make()
        delivery.drop("A")
        delivery.drop("A")
        delivery.drop("never-there")
        delivery()
        assert len(got_b) == 1

    def test_dropping_last_recipient_cancels_the_event(self):
        q = EventQueue()
        delivery, _, _ = self.make()
        delivery.event = q.schedule(1.0, delivery, label="fanout")
        delivery.drop("A")
        assert not delivery.event.cancelled
        delivery.drop("B")
        assert delivery.event.cancelled
        assert q.pending == 0

    def test_endpoint_table_is_live(self):
        # Resolution happens at fire time: an endpoint gone from the
        # table by then is skipped even if never drop()ed.
        delivery, got_a, got_b = self.make()
        del delivery._endpoints["A"]
        delivery()
        assert got_a == [] and len(got_b) == 1


class TestBusDeferredDelivery:
    def test_transfer_load_is_one_event(self):
        bus = Bus(0.5)
        got, handler = recorder()
        bus.attach("S", lambda m: None)
        bus.attach("W", handler)
        done = bus.transfer_load("S", "W", 2.0, body=("blocks",))
        assert done == pytest.approx(1.0)
        assert bus.queue.pending == 1
        bus.queue.run()
        assert len(got) == 1
        assert got[0].kind is MessageKind.LOAD
        assert got[0].body == ("blocks",)

    def test_detach_before_delivery_suppresses_it(self):
        bus = Bus(0.5)
        got, handler = recorder()
        bus.attach("S", lambda m: None)
        bus.attach("W", handler)
        bus.transfer_load("S", "W", 2.0, body=("blocks",))
        bus.detach("W")
        bus.queue.run()
        assert got == []
        assert bus.queue.pending == 0


class TestFaultyBusDelayGrouping:
    def plan(self, delay=0.25):
        return FaultPlan(messages=(
            MessageFault(action="delay", probability=1.0, delay=delay),))

    def build(self, plan):
        bus = FaultyBus(0.5, plan=plan)
        got_a, h_a = recorder()
        got_b, h_b = recorder()
        bus.attach("S", lambda m: None)
        bus.attach("A", h_a)
        bus.attach("B", h_b)
        return bus, got_a, got_b

    def test_same_delay_recipients_share_one_event(self):
        bus, got_a, got_b = self.build(self.plan())
        msg = Message(MessageKind.CLAIM, "S", ("A", "B"), {"x": 1})
        delivered = bus.send(msg)
        assert delivered == ()                       # nothing arrived yet
        assert bus.queue.pending == 1                # one event, two riders
        assert [r.kind for r in bus.fault_log] == ["delay", "delay"]
        bus.queue.run()
        assert len(got_a) == 1 and len(got_b) == 1
        assert got_a[0].body == {"x": 1}

    def test_detach_drops_one_rider_from_delayed_fanout(self):
        bus, got_a, got_b = self.build(self.plan())
        bus.send(Message(MessageKind.CLAIM, "S", ("A", "B"), {"x": 1}))
        bus.detach("B")
        bus.queue.run()
        assert len(got_a) == 1 and got_b == []

    def test_detach_of_sole_rider_cancels_the_event(self):
        bus, got_a, _ = self.build(self.plan())
        bus.send(Message(MessageKind.CLAIM, "S", ("A",), {"x": 1}))
        assert bus.queue.pending == 1
        bus.detach("A")
        assert bus.queue.pending == 0
        bus.queue.run()
        assert got_a == []

    def test_distinct_delays_get_distinct_events(self):
        plan = FaultPlan(messages=(
            MessageFault(action="delay", probability=1.0, delay=0.25,
                         recipient="A"),
            MessageFault(action="delay", probability=1.0, delay=0.75,
                         recipient="B"),
        ))
        bus, got_a, got_b = self.build(plan)
        bus.send(Message(MessageKind.CLAIM, "S", ("A", "B"), {"x": 1}))
        assert bus.queue.pending == 2
        bus.queue.step()
        assert len(got_a) == 1 and got_b == []       # A's event fires first
        bus.queue.run()
        assert len(got_b) == 1
