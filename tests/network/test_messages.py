"""Tests for message envelopes and wire-size accounting."""

import pytest

from repro.crypto.signatures import SigningKey
from repro.network.messages import Message, MessageKind


class TestMessage:
    def test_broadcast_detection(self):
        m = Message(MessageKind.BID, "P1", ("*",), {"x": 1})
        assert m.is_broadcast
        u = Message(MessageKind.LOAD, "P1", ("P2",), {"x": 1})
        assert not u.is_broadcast

    def test_requires_recipients(self):
        with pytest.raises(ValueError):
            Message(MessageKind.BID, "P1", (), {"x": 1})

    def test_size_from_signed_message(self):
        key = SigningKey("P1")
        sm = key.sign({"bid": 2.0, "processor": "P1"})
        m = Message(MessageKind.BID, "P1", ("*",), sm)
        assert m.size_bytes == sm.size_bytes

    def test_size_from_list_of_signed(self):
        key = SigningKey("P1")
        sms = [key.sign({"bid": float(i)}) for i in range(3)]
        m = Message(MessageKind.BID_VECTOR, "P1", ("referee",), sms)
        assert m.size_bytes == sum(s.size_bytes for s in sms)

    def test_size_scales_with_payload(self):
        small = Message(MessageKind.METER, "r", ("*",), {"phi": [1.0]})
        large = Message(MessageKind.METER, "r", ("*",), {"phi": [1.0] * 50})
        assert large.size_bytes > small.size_bytes

    def test_opaque_body_gets_nominal_size(self):
        m = Message(MessageKind.LOAD, "P1", ("P2",), object())
        assert m.size_bytes == 64

    def test_explicit_size_respected(self):
        m = Message(MessageKind.LOAD, "P1", ("P2",), {"x": 1}, size_bytes=4096)
        assert m.size_bytes == 4096

    def test_load_kind_excluded_from_cost_metric(self):
        assert MessageKind.LOAD.is_load_transfer
        assert not MessageKind.PAYMENT_VECTOR.is_load_transfer
