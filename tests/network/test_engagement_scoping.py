"""Engagement scoping on the shared bus: isolation under contention.

Two layers of guarantees when K engagements multiplex one bus:

* **addressing** — traffic, endpoints, stats and logs are partitioned
  per engagement scope while the physics (event clock, one-port
  constraint) stay shared;
* **fault isolation** — a :class:`FaultPlan` armed under engagement A's
  id must never perturb engagement B: not B's deliveries, not B's log,
  and not the RNG-draw alignment of B's *own* plan (each engagement's
  plan state owns a private seeded RNG), mirroring the referee-fault
  scoping guarantees of the committee suite.
"""

import pytest

from repro.network.bus import Bus
from repro.network.faults import (
    CrashFault,
    FaultPlan,
    FaultyBus,
    MessageFault,
)
from repro.network.messages import Message, MessageKind
from repro.protocol.phases import Phase


def scoped_pair(bus, eid, names=("P1", "P2", "P3")):
    """Attach *names* under engagement *eid*; return (view, inboxes)."""
    view = bus.scoped(eid)
    inboxes = {}
    for name in names:
        inboxes[name] = []
        view.attach(name, inboxes[name].append)
    return view, inboxes


def chatter(view, rounds=12):
    """A deterministic unicast conversation inside one scope."""
    acks = []
    for k in range(rounds):
        sender = f"P{(k % 3) + 1}"
        recipient = f"P{((k + 1) % 3) + 1}"
        acks.append(view.send(
            Message(MessageKind.CLAIM, sender, (recipient,), {"k": k})))
    return acks


class TestScopedAddressing:
    def test_view_stamps_the_engagement_tag(self):
        bus = Bus(0.5)
        view, inboxes = scoped_pair(bus, "A")
        view.broadcast(Message(MessageKind.BID, "P1", ("*",), {"v": 1}))
        assert all(m.engagement == "A" for m in inboxes["P2"])
        assert [m.engagement for m in bus.log_for("A")] == ["A"]
        assert bus.log_for(None) == []      # root scope untouched

    def test_same_names_coexist_across_scopes(self):
        bus = Bus(0.5)
        _, in_a = scoped_pair(bus, "A")
        _, in_b = scoped_pair(bus, "B")     # same P1..P3, no collision
        bus.scoped("A").broadcast(
            Message(MessageKind.BID, "P1", ("*",), {}))
        assert len(in_a["P2"]) == 1
        assert in_b["P2"] == []             # B heard nothing
        assert set(bus.engagements) == {"A", "B"}
        assert bus.endpoints_for("A") == bus.endpoints_for("B")

    def test_stats_partition_per_scope(self):
        bus = Bus(0.5)
        view_a, _ = scoped_pair(bus, "A")
        view_b, _ = scoped_pair(bus, "B")
        chatter(view_a, rounds=6)
        chatter(view_b, rounds=2)
        assert bus.stats_for("A").control_messages == 6
        assert bus.stats_for("B").control_messages == 2

    def test_physics_stay_shared_across_scopes(self):
        # The one-port constraint is the *point* of contention: B's
        # load transfer must queue behind A's even though their control
        # planes are isolated.
        bus = Bus(0.5)
        view_a, _ = scoped_pair(bus, "A")
        view_b, in_b = scoped_pair(bus, "B")
        view_a.transfer_load("P1", "P2", 4.0, {})
        t_busy = bus.port_free_at
        assert t_busy == pytest.approx(2.0)
        view_b.transfer_load("P1", "P3", 2.0, {})
        assert bus.port_free_at == pytest.approx(t_busy + 1.0)
        bus.queue.run()
        arrival = [m for m in in_b["P3"]
                   if m.kind is MessageKind.LOAD]
        assert len(arrival) == 1

    def test_detach_is_scope_local(self):
        bus = Bus(0.5)
        view_a, _ = scoped_pair(bus, "A")
        view_b, _ = scoped_pair(bus, "B")
        view_a.detach("P2")
        assert "P2" not in bus.endpoints_for("A")
        assert "P2" in bus.endpoints_for("B")


class TestFaultIsolationChaos:
    """A plan armed for engagement A must be invisible to engagement B."""

    A_PLAN = FaultPlan(seed=3, messages=(
        MessageFault(action="drop", probability=0.5),))
    B_PLAN = FaultPlan(seed=11, messages=(
        MessageFault(action="drop", probability=0.4),))

    def _run(self, plans):
        bus = FaultyBus(0.5, plans=plans)
        view_a, in_a = scoped_pair(bus, "A")
        view_b, in_b = scoped_pair(bus, "B")
        # Interleave the two conversations so every A-side RNG draw
        # happens *between* B-side sends — the worst case for bleed.
        acks_a, acks_b = [], []
        for k in range(20):
            acks_a.append(view_a.send(Message(
                MessageKind.CLAIM, "P1", ("P2",), {"k": k})))
            acks_b.append(view_b.send(Message(
                MessageKind.CLAIM, "P2", ("P3",), {"k": k})))
        return bus, in_a, in_b, acks_a, acks_b

    def test_a_plan_never_perturbs_b_traffic(self):
        _, _, quiet_b, _, quiet_acks = self._run(plans={})
        bus, in_a, in_b, acks_a, acks_b = self._run(
            plans={"A": self.A_PLAN})
        # A suffered: some of its 20 unicasts were dropped.
        assert bus.fault_counts(engagement="A").get("drop", 0) > 0
        # B byte-for-byte identical to the no-fault world.
        assert acks_b == quiet_acks
        assert [m.body for m in in_b["P3"]] == [m.body
                                                for m in quiet_b["P3"]]
        assert bus.fault_counts(engagement="B") == {}
        assert all(r.engagement == "A" for r in bus.fault_log)

    def test_b_rng_alignment_survives_a_plan(self):
        # B's own seeded plan must fire on exactly the same messages
        # whether or not A's plan exists: each engagement's fate draws
        # come from a private Random(seed), not a shared stream.
        _, _, _, _, acks_solo = self._run(plans={"B": self.B_PLAN})
        _, _, _, _, acks_both = self._run(
            plans={"A": self.A_PLAN, "B": self.B_PLAN})
        assert acks_both == acks_solo
        assert any(ack == () for ack in acks_solo)  # B's plan did fire

    def test_crashes_are_scope_local(self):
        plan = FaultPlan(crashes=(
            CrashFault("P2", phase=Phase.PROCESSING_LOAD),))
        bus = FaultyBus(0.5, plans={"A": plan})
        scoped_pair(bus, "A")
        scoped_pair(bus, "B")
        bus.enter_phase(Phase.PROCESSING_LOAD, engagement="A")
        assert bus.is_crashed("P2", engagement="A")
        assert not bus.is_crashed("P2", engagement="B")
        assert bus.crashed_for("A") == ("P2",)
        assert bus.crashed_for("B") == ()

    def test_fault_counts_default_aggregates_all_scopes(self):
        bus, *_ = self._run(plans={"A": self.A_PLAN, "B": self.B_PLAN})
        total = bus.fault_counts()
        per = (bus.fault_counts(engagement="A").get("drop", 0)
               + bus.fault_counts(engagement="B").get("drop", 0))
        assert total.get("drop", 0) == per > 0

    def test_empty_engagement_id_rejected(self):
        with pytest.raises(ValueError):
            FaultyBus(0.5, plans={"": self.A_PLAN})


class TestProtocolLevelIsolation:
    def test_faulty_neighbour_cannot_touch_honest_settlement(self):
        # End to end through the arbiter: engagement A crashes a
        # processor mid-Processing and B must still settle exactly as
        # it would alone — same settlement digest, same wire digest.
        from repro.api import (
            MultiEngagementRequest,
            build_mechanism,
            settlement_digest,
        )
        from repro.api.v1 import EngagementRequest
        from repro.io import protocol_result_to_dict
        from repro.protocol.arbiter import BusArbiter
        from repro.protocol.trace import wire_digest

        honest = EngagementRequest(w=(2.0, 3.0, 5.0), z=0.4)
        faulty = EngagementRequest(w=(4.0, 6.0, 10.0, 8.0), z=0.4,
                                   crash=((2, 0.5),))
        solo_mech = build_mechanism(honest)
        solo = solo_mech.run()
        solo_settle = settlement_digest(protocol_result_to_dict(solo))
        solo_wire = wire_digest(solo_mech.engine.bus.log)

        multi = MultiEngagementRequest(
            engagements=(faulty.to_dict(), honest.to_dict()))
        out = BusArbiter(0.4, multi.jobs(), policy="rr").run()
        assert out.results["E1"].degraded       # the crash really fired
        assert settlement_digest(protocol_result_to_dict(
            out.results["E2"])) == solo_settle
        assert out.wire_digests["E2"] == solo_wire
