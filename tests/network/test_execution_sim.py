"""The operational simulator must agree with the analytic equations."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import finish_times, makespan
from repro.network.execution_sim import simulate_execution
from tests.conftest import network_strategy


class TestAgreementWithEquations:
    @given(network_strategy(min_m=1, max_m=8))
    @settings(max_examples=100, deadline=None)
    def test_optimal_allocation_matches(self, net):
        alpha = allocate(net)
        run = simulate_execution(alpha, net)
        assert np.allclose(run.finish_times, finish_times(alpha, net),
                           rtol=1e-12, atol=1e-12)
        assert run.makespan == pytest.approx(makespan(alpha, net))

    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_allocation_matches(self, net):
        # Agreement must hold off-optimum too (Eqs 1-3 are allocation-
        # agnostic).
        rng = np.random.default_rng(net.m)
        alpha = rng.dirichlet(np.ones(net.m))
        run = simulate_execution(alpha, net)
        assert np.allclose(run.finish_times, finish_times(alpha, net),
                           rtol=1e-12, atol=1e-12)

    @given(network_strategy(min_m=2, max_m=6))
    @settings(max_examples=60, deadline=None)
    def test_mixed_execution_values_match(self, net):
        alpha = allocate(net)
        w_exec = np.asarray(net.w) * 1.5
        run = simulate_execution(alpha, net, w_exec=w_exec)
        assert np.allclose(run.finish_times,
                           finish_times(alpha, net, w_exec=w_exec))


class TestOperationalDetails:
    def test_comm_done_excludes_untransmitted_fractions(self):
        net = BusNetwork((2.0, 3.0, 4.0), 1.0, NetworkKind.NCP_FE)
        alpha = np.array([0.5, 0.3, 0.2])
        run = simulate_execution(alpha, net)
        assert run.comm_done == pytest.approx(1.0 * (0.3 + 0.2))

    def test_cp_ships_everything(self):
        net = BusNetwork((2.0, 3.0), 1.0, NetworkKind.CP)
        run = simulate_execution(np.array([0.6, 0.4]), net)
        assert run.comm_done == pytest.approx(1.0)

    def test_event_count_scales_with_m(self):
        net = BusNetwork(tuple([2.0] * 6), 0.5, NetworkKind.CP)
        run = simulate_execution(allocate(net), net)
        # one delivery + one completion per worker
        assert run.events_processed == 12

    def test_shape_validation(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        with pytest.raises(ValueError):
            simulate_execution([0.5], net)
        with pytest.raises(ValueError):
            simulate_execution([0.5, 0.5], net, w_exec=[1.0])
