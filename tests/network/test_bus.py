"""Tests for the shared bus transport."""

import pytest

from repro.network.bus import Bus
from repro.network.messages import Message, MessageKind


def make_bus(z=0.5):
    bus = Bus(z)
    inboxes = {}
    for name in ("P1", "P2", "P3"):
        inboxes[name] = []
        bus.attach(name, inboxes[name].append)
    return bus, inboxes


class TestAttachment:
    def test_duplicate_name_rejected(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.attach("P1", lambda m: None)

    def test_detach(self):
        bus, inboxes = make_bus()
        bus.detach("P2")
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"x": 1}))
        assert inboxes["P2"] == []
        assert len(inboxes["P3"]) == 1

    def test_rejects_bad_z(self):
        with pytest.raises(ValueError):
            Bus(0.0)


class TestBroadcast:
    def test_atomic_delivery_to_all_but_sender(self):
        bus, inboxes = make_bus()
        msg = Message(MessageKind.BID, "P1", ("*",), {"bid": 2.0})
        bus.broadcast(msg)
        assert inboxes["P1"] == []
        assert inboxes["P2"] == [msg]
        assert inboxes["P3"] == [msg]

    def test_identical_payload_everywhere(self):
        # Atomicity: one log entry, same object delivered to everyone.
        bus, inboxes = make_bus()
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"bid": 2.0}))
        assert inboxes["P2"][0] is inboxes["P3"][0]
        assert len(bus.log) == 1

    def test_requires_star_recipients(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.broadcast(Message(MessageKind.BID, "P1", ("P2",), {}))


class TestSend:
    def test_unicast(self):
        bus, inboxes = make_bus()
        msg = Message(MessageKind.CLAIM, "P1", ("P2",), {"c": 1})
        bus.send(msg)
        assert inboxes["P2"] == [msg]
        assert inboxes["P3"] == []

    def test_multicast(self):
        bus, inboxes = make_bus()
        bus.send(Message(MessageKind.CLAIM, "P1", ("P2", "P3"), {"c": 1}))
        assert len(inboxes["P2"]) == len(inboxes["P3"]) == 1

    def test_unknown_recipient_rejected(self):
        bus, _ = make_bus()
        with pytest.raises(KeyError):
            bus.send(Message(MessageKind.CLAIM, "P1", ("ghost",), {}))

    def test_star_rejected(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.send(Message(MessageKind.CLAIM, "P1", ("*",), {}))


class TestLoadTransfers:
    def test_one_port_serializes_transfers(self):
        bus, inboxes = make_bus(z=2.0)
        t1 = bus.transfer_load("P1", "P2", 0.5, ["b1"])
        t2 = bus.transfer_load("P1", "P3", 0.25, ["b2"])
        assert t1 == pytest.approx(1.0)
        assert t2 == pytest.approx(1.5)  # starts only after t1
        bus.queue.run()
        assert inboxes["P2"][0].body == ["b1"]
        assert inboxes["P3"][0].body == ["b2"]

    def test_delivery_happens_at_completion_time(self):
        bus, inboxes = make_bus(z=2.0)
        done = bus.transfer_load("P1", "P2", 1.0, ["b"])
        bus.queue.run_until(done - 0.1)
        assert inboxes["P2"] == []
        bus.queue.run()
        assert len(inboxes["P2"]) == 1
        assert bus.queue.now == pytest.approx(done)

    def test_rejects_negative_units(self):
        bus, _ = make_bus()
        with pytest.raises(ValueError):
            bus.transfer_load("P1", "P2", -1.0, [])

    def test_zero_unit_transfer_is_instant(self):
        bus, _ = make_bus()
        assert bus.transfer_load("P1", "P2", 0.0, []) == 0.0


class TestAccounting:
    def test_stats_count_messages_and_bytes(self):
        bus, _ = make_bus()
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"bid": 2.0}))
        bus.send(Message(MessageKind.CLAIM, "P2", ("P1",), {"c": 1}))
        assert bus.stats.messages == 2
        assert bus.stats.bytes > 0
        assert bus.stats.by_kind[MessageKind.BID] == 1

    def test_control_metrics_exclude_load(self):
        bus, _ = make_bus()
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"bid": 2.0}))
        before = bus.stats.control_bytes
        bus.transfer_load("P1", "P2", 0.5, ["block"])
        assert bus.stats.control_bytes == before
        assert bus.stats.messages == 2
        assert bus.stats.control_messages == 1

    def test_log_preserves_order(self):
        bus, _ = make_bus()
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"a": 1}))
        bus.transfer_load("P1", "P2", 0.1, ["b"])
        bus.send(Message(MessageKind.CLAIM, "P2", ("P1",), {"c": 1}))
        kinds = [m.kind for m in bus.log]
        assert kinds == [MessageKind.BID, MessageKind.LOAD, MessageKind.CLAIM]


class TestSenderValidation:
    def test_broadcast_requires_attached_sender(self):
        bus, _ = make_bus()
        with pytest.raises(KeyError, match="unknown sender"):
            bus.broadcast(Message(MessageKind.BID, "ghost", ("*",), {"b": 1}))

    def test_send_requires_attached_sender(self):
        bus, _ = make_bus()
        with pytest.raises(KeyError, match="unknown sender"):
            bus.send(Message(MessageKind.CLAIM, "ghost", ("P1",), {"c": 1}))

    def test_transfer_requires_attached_sender(self):
        bus, _ = make_bus()
        with pytest.raises(KeyError, match="unknown sender"):
            bus.transfer_load("ghost", "P1", 0.5, ["block"])

    def test_send_returns_ack_of_all_recipients(self):
        bus, _ = make_bus()
        got = bus.send(Message(MessageKind.CLAIM, "P1", ("P2", "P3"), {}))
        assert got == ("P2", "P3")


class TestDetachInFlight:
    def test_detach_cancels_pending_load_delivery(self):
        # Regression: a detached endpoint must not receive deliveries
        # already scheduled for it (previously the queued closure fired
        # into the stale handler).
        bus, inboxes = make_bus()
        bus.transfer_load("P1", "P2", 1.0, ["block"])
        bus.detach("P2")
        bus.queue.run()
        assert inboxes["P2"] == []

    def test_other_deliveries_survive_detach(self):
        bus, inboxes = make_bus()
        bus.transfer_load("P1", "P2", 1.0, ["b2"])
        bus.transfer_load("P1", "P3", 1.0, ["b3"])
        bus.detach("P2")
        bus.queue.run()
        assert inboxes["P2"] == []
        assert len(inboxes["P3"]) == 1
