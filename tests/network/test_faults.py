"""Tests for the fault-injection layer (FaultPlan / FaultyBus)."""

import pytest

from repro.network.bus import Bus
from repro.network.faults import (
    CrashFault,
    FaultPlan,
    FaultyBus,
    MessageFault,
    RefereeFault,
    StallFault,
)
from repro.network.messages import Message, MessageKind
from repro.protocol.phases import Phase


def make_bus(plan=None, z=0.5):
    bus = FaultyBus(z, plan=plan)
    inboxes = {}
    for name in ("P1", "P2", "P3"):
        inboxes[name] = []
        bus.attach(name, inboxes[name].append)
    return bus, inboxes


class TestPlanValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            CrashFault("P1")
        with pytest.raises(ValueError):
            CrashFault("P1", phase=Phase.BIDDING, at_time=1.0)

    def test_crash_progress_bounds(self):
        with pytest.raises(ValueError):
            CrashFault("P1", phase=Phase.PROCESSING_LOAD, progress=1.5)

    def test_duplicate_crash_names_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(CrashFault("P1", at_time=1.0),
                               CrashFault("P1", at_time=2.0)))

    def test_message_fault_validation(self):
        with pytest.raises(ValueError):
            MessageFault(action="explode")
        with pytest.raises(ValueError):
            MessageFault(action="delay", delay=0.0)
        with pytest.raises(ValueError):
            MessageFault(probability=1.5)

    def test_stall_validation(self):
        with pytest.raises(ValueError):
            StallFault(factor=0.5)
        with pytest.raises(ValueError):
            StallFault(extra_time=-1.0)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(meter_outages=("P1",)).empty


class TestEmptyPlanNoOp:
    def test_wire_trace_matches_plain_bus(self):
        # The strict no-op guarantee: identical log, stats and schedule.
        def drive(bus):
            inbox = []
            for name in ("P1", "P2"):
                bus.attach(name, inbox.append)
            bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"b": 2.0}))
            bus.send(Message(MessageKind.CLAIM, "P2", ("P1",), {"c": 1}))
            bus.transfer_load("P1", "P2", 0.25, ["blk"])
            bus.queue.run()
            return inbox, bus

        plain_inbox, plain = drive(Bus(0.5))
        faulty_inbox, faulty = drive(FaultyBus(0.5, plan=FaultPlan()))
        assert [m.kind for m in faulty.log] == [m.kind for m in plain.log]
        assert faulty.stats == plain.stats
        assert faulty.queue.now == plain.queue.now
        assert [m.kind for m in faulty_inbox] == [m.kind for m in plain_inbox]
        assert faulty.fault_log == []


class TestMessageFaults:
    def test_drop(self):
        plan = FaultPlan(messages=(MessageFault(action="drop",
                                                recipient="P2"),))
        bus, inboxes = make_bus(plan)
        got = bus.send(Message(MessageKind.CLAIM, "P1", ("P2", "P3"), {}))
        assert got == ("P3",)
        assert inboxes["P2"] == []
        assert len(inboxes["P3"]) == 1
        assert bus.fault_counts() == {"drop": 1}

    def test_drop_respects_max_applications(self):
        plan = FaultPlan(messages=(MessageFault(action="drop",
                                                max_applications=1),))
        bus, inboxes = make_bus(plan)
        assert bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {})) == ()
        assert bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {})) == ("P2",)
        assert len(inboxes["P2"]) == 1

    def test_delay_delivers_later_but_unacked(self):
        plan = FaultPlan(messages=(MessageFault(action="delay", delay=2.0),))
        bus, inboxes = make_bus(plan)
        got = bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {}))
        assert got == ()          # not delivered *now* -> no ack
        assert inboxes["P2"] == []
        bus.queue.run()
        assert len(inboxes["P2"]) == 1
        assert bus.queue.now == pytest.approx(2.0)

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(messages=(MessageFault(action="duplicate"),))
        bus, inboxes = make_bus(plan)
        got = bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {}))
        assert got == ("P2",)
        assert len(inboxes["P2"]) == 2

    def test_probabilistic_drop_is_seed_reproducible(self):
        def deliveries(seed):
            plan = FaultPlan(seed=seed, messages=(
                MessageFault(action="drop", probability=0.5),))
            bus, _ = make_bus(plan)
            out = []
            for _ in range(20):
                out.append(bus.send(
                    Message(MessageKind.CLAIM, "P1", ("P2",), {})))
            return out

        assert deliveries(7) == deliveries(7)
        assert deliveries(7) != deliveries(8)

    def test_load_messages_never_matched(self):
        plan = FaultPlan(messages=(MessageFault(action="drop"),))
        bus, inboxes = make_bus(plan)
        bus.transfer_load("P1", "P2", 0.5, ["blk"])
        bus.queue.run()
        assert len(inboxes["P2"]) == 1

    def test_broadcast_immune_to_message_faults(self):
        # Atomic broadcast is a physical-medium property (paper §4):
        # only crash-stop silences a listener.
        plan = FaultPlan(messages=(MessageFault(action="drop"),))
        bus, inboxes = make_bus(plan)
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"b": 1.0}))
        assert len(inboxes["P2"]) == 1
        assert len(inboxes["P3"]) == 1


class TestCrashes:
    def test_phase_crash_silences_listener_and_sender(self):
        plan = FaultPlan(crashes=(CrashFault(
            "P2", phase=Phase.ALLOCATING_LOAD),))
        bus, inboxes = make_bus(plan)
        bus.enter_phase(Phase.BIDDING)
        assert not bus.is_crashed("P2")
        bus.enter_phase(Phase.ALLOCATING_LOAD)
        assert bus.is_crashed("P2")
        bus.broadcast(Message(MessageKind.BID, "P1", ("*",), {"b": 1.0}))
        assert inboxes["P2"] == []
        assert len(inboxes["P3"]) == 1
        assert bus.send(Message(MessageKind.CLAIM, "P2", ("P1",), {})) == ()
        assert inboxes["P1"] == []

    def test_timed_crash(self):
        plan = FaultPlan(crashes=(CrashFault("P2", at_time=1.0),))
        bus, inboxes = make_bus(plan)
        assert bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {})) == ("P2",)
        bus.queue.run_until(1.5)
        assert bus.is_crashed("P2")
        assert bus.send(Message(MessageKind.CLAIM, "P1", ("P2",), {})) == ()
        assert len(inboxes["P2"]) == 1

    def test_load_to_crashed_occupies_port_but_is_lost(self):
        plan = FaultPlan(crashes=(CrashFault("P2", phase=Phase.BIDDING),))
        bus, inboxes = make_bus(plan)
        bus.enter_phase(Phase.BIDDING)
        done = bus.transfer_load("P1", "P2", 1.0, ["blk"])
        assert done == pytest.approx(0.5)
        assert bus.port_free_at == pytest.approx(0.5)
        bus.queue.run()
        assert inboxes["P2"] == []
        assert "lost-to-crashed" in bus.fault_counts()

    def test_crash_cancels_in_flight_deliveries(self):
        plan = FaultPlan(crashes=(CrashFault("P2", at_time=0.1),))
        bus, inboxes = make_bus(plan)
        bus.transfer_load("P1", "P2", 1.0, ["blk"])  # would land at 0.5
        bus.queue.run_until(0.2)
        assert bus.is_crashed("P2")
        bus.queue.run()
        assert inboxes["P2"] == []


class TestStalls:
    def test_stall_stretches_transfer(self):
        plan = FaultPlan(stalls=(StallFault(recipient="P2", factor=3.0,
                                            extra_time=0.1),))
        bus, _ = make_bus(plan)
        done = bus.transfer_load("P1", "P2", 1.0, ["blk"])
        assert done == pytest.approx(0.5 * 3.0 + 0.1)
        done3 = bus.transfer_load("P1", "P3", 1.0, ["blk"])
        assert done3 == pytest.approx(done + 0.5)  # P3 unaffected

    def test_stall_records_fault(self):
        plan = FaultPlan(stalls=(StallFault(factor=2.0),))
        bus, _ = make_bus(plan)
        bus.transfer_load("P1", "P2", 1.0, ["blk"])
        assert bus.fault_counts() == {"stall": 1}


def quorum_bus(plan):
    bus = FaultyBus(0.5, plan=plan)
    inboxes = {}
    for name in ("referee-1", "referee-2", "P1"):
        inboxes[name] = []
        bus.attach(name, inboxes[name].append)
    return bus, inboxes


class TestRefereeFaults:
    def test_validation(self):
        with pytest.raises(ValueError, match="action"):
            RefereeFault("referee-1", action="bribable")
        with pytest.raises(ValueError, match="delay"):
            RefereeFault("referee-1", action="delay")
        with pytest.raises(ValueError, match="probability"):
            RefereeFault("referee-1", action="drop", probability=2.0)

    def test_strategy_vs_transport_split(self):
        assert RefereeFault("referee-1", action="silent").is_strategy
        assert RefereeFault("referee-1", action="fine-steal").is_strategy
        assert not RefereeFault("referee-1", action="crash").is_strategy
        assert not RefereeFault("referee-1", action="drop").is_strategy

    def test_plan_partitions_referee_faults(self):
        plan = FaultPlan(referees=(
            RefereeFault("referee-1", action="crash"),
            RefereeFault("referee-2", action="equivocate"),
            RefereeFault("referee-3", action="drop"),
        ))
        assert plan.referee_crashes() == ("referee-1",)
        assert plan.referee_strategies() == {"referee-2": "equivocate"}
        assert not plan.empty

    def test_transport_rule_only_matches_quorum_traffic(self):
        rule = RefereeFault("referee-1", action="drop")
        quorum = Message(MessageKind.QUORUM_VOTE, "referee-1",
                         ("referee-2",), {})
        control = Message(MessageKind.CLAIM, "referee-1", ("P1",), {})
        assert rule.matches(quorum, "referee-2")
        assert rule.matches(
            Message(MessageKind.QUORUM_PROPOSAL, "referee-2",
                    ("referee-1",), {}), "referee-1")
        assert not rule.matches(control, "P1")
        assert rule.matches(quorum, "P1")  # the member is the sender
        assert not rule.matches(
            Message(MessageKind.QUORUM_VOTE, "referee-3",
                    ("referee-4",), {}), "referee-4")

    def test_drop_applies_on_the_bus(self):
        plan = FaultPlan(referees=(
            RefereeFault("referee-1", action="drop", max_applications=1),))
        bus, inboxes = quorum_bus(plan)
        vote = Message(MessageKind.QUORUM_VOTE, "referee-2",
                       ("referee-1",), {})
        assert bus.send(vote) == ()
        assert bus.send(vote) == ("referee-1",)
        assert len(inboxes["referee-1"]) == 1
        assert bus.fault_counts() == {"drop": 1}

    def test_referee_crash_precedes_all_phases(self):
        plan = FaultPlan(referees=(RefereeFault("referee-1",
                                                action="crash"),))
        bus, inboxes = quorum_bus(plan)
        assert bus.is_crashed("referee-1")
        got = bus.send(Message(MessageKind.QUORUM_PROPOSAL, "referee-2",
                               ("referee-1",), {}))
        assert got == ()
        assert inboxes["referee-1"] == []
        # ...and it cannot speak either.
        assert bus.send(Message(MessageKind.QUORUM_VOTE, "referee-1",
                                ("referee-2",), {})) == ()

    def test_wildcard_message_fault_skips_quorum_traffic(self):
        # A seeded plan written before committees existed must hit the
        # same processor messages after one is armed: wildcard rules
        # never consume an RNG draw on committee-internal traffic.
        plan = FaultPlan(messages=(MessageFault(action="drop"),))
        bus, inboxes = quorum_bus(plan)
        vote = Message(MessageKind.QUORUM_VOTE, "referee-2",
                       ("referee-1",), {})
        assert bus.send(vote) == ("referee-1",)
        # An explicitly-typed rule still can.
        typed = FaultPlan(messages=(
            MessageFault(action="drop", kind=MessageKind.QUORUM_VOTE),))
        bus2, _ = quorum_bus(typed)
        assert bus2.send(vote) == ()
