"""Tests for the discrete-event kernel."""

import pytest

from repro.network.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        q = EventQueue()
        trace = []
        q.schedule(2.0, lambda: trace.append("b"))
        q.schedule(1.0, lambda: trace.append("a"))
        q.schedule(3.0, lambda: trace.append("c"))
        q.run()
        assert trace == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        trace = []
        for label in "abc":
            q.schedule(1.0, lambda l=label: trace.append(l))
        q.run()
        assert trace == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(5.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [5.0]
        assert q.now == 5.0

    def test_schedule_in_relative(self):
        q = EventQueue()
        trace = []
        q.schedule(1.0, lambda: q.schedule_in(2.0, lambda: trace.append(q.now)))
        q.run()
        assert trace == [3.0]

    def test_rejects_past(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.step()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda: None)

    def test_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        trace = []
        ev = q.schedule(1.0, lambda: trace.append("x"))
        q.schedule(2.0, lambda: trace.append("y"))
        ev.cancel()
        q.run()
        assert trace == ["y"]

    def test_pending_excludes_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert q.pending == 2
        ev.cancel()
        assert q.pending == 1


class TestRunControl:
    def test_run_returns_count(self):
        q = EventQueue()
        for t in range(5):
            q.schedule(float(t), lambda: None)
        assert q.run() == 5
        assert q.processed == 5

    def test_run_until_stops_at_deadline(self):
        q = EventQueue()
        trace = []
        q.schedule(1.0, lambda: trace.append(1))
        q.schedule(5.0, lambda: trace.append(5))
        q.run_until(3.0)
        assert trace == [1]
        assert q.now == 3.0
        q.run()
        assert trace == [1, 5]

    def test_event_budget_guards_loops(self):
        q = EventQueue()

        def reschedule():
            q.schedule_in(0.1, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)

    def test_self_scheduling_chain(self):
        # Events scheduled during execution run in the same drain.
        q = EventQueue()
        trace = []

        def step(n):
            trace.append(n)
            if n < 3:
                q.schedule_in(1.0, lambda: step(n + 1))

        q.schedule(0.0, lambda: step(0))
        q.run()
        assert trace == [0, 1, 2, 3]
        assert q.now == 3.0


class TestCancel:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        trace = []
        ev = q.schedule(1.0, lambda: trace.append("x"))
        q.schedule(2.0, lambda: trace.append("y"))
        q.cancel(ev)
        q.run()
        assert trace == ["y"]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.cancel(ev)
        q.cancel(ev)
        ev.cancel()
        assert q.run() == 0

    def test_cancel_does_not_perturb_survivor_order(self):
        # All at the same timestamp: FIFO among survivors must hold no
        # matter which entries were cancelled.
        q = EventQueue()
        trace = []
        events = [q.schedule(1.0, lambda i=i: trace.append(i))
                  for i in range(6)]
        q.cancel(events[0])
        q.cancel(events[3])
        q.run()
        assert trace == [1, 2, 4, 5]

    def test_cancel_mid_drain(self):
        # An event may cancel a later-scheduled one while draining.
        q = EventQueue()
        trace = []
        victim = q.schedule(2.0, lambda: trace.append("victim"))
        q.schedule(1.0, lambda: q.cancel(victim))
        q.schedule(3.0, lambda: trace.append("after"))
        q.run()
        assert trace == ["after"]

    def test_chaos_seeded_interleaving_is_deterministic(self):
        # Property test: under a random interleaving of schedule/cancel
        # operations (including time ties), the executed order must
        # equal a reference model — surviving events sorted by
        # (time, insertion seq) — and re-running the same seed must
        # reproduce it exactly.
        import random

        def run_chaos(seed):
            rng = random.Random(seed)
            q = EventQueue()
            trace = []
            live = []
            for i in range(200):
                if live and rng.random() < 0.3:
                    ev = live.pop(rng.randrange(len(live)))
                    q.cancel(ev)
                else:
                    t = rng.choice([1.0, 2.0, 3.0])  # force ties
                    ev = q.schedule(t, lambda i=i: trace.append(i),
                                    label=str(i))
                    live.append(ev)
            expected = [int(e.label) for e in
                        sorted(live, key=lambda e: (e.time, e.seq))]
            q.run()
            return trace, expected

        for seed in range(10):
            trace, expected = run_chaos(seed)
            assert trace == expected, f"seed {seed} diverged from model"
            again, _ = run_chaos(seed)
            assert again == trace, f"seed {seed} not reproducible"
