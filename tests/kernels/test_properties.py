"""Hypothesis properties of the batch kernels themselves.

The differential suite pins the batch path to the scalar oracle
bit-for-bit; this module additionally checks that the batch path
satisfies the *paper's* invariants directly — mass conservation
(allocations are fractions of one load) and the simultaneous-finish
optimality condition — so a future bug that broke both paths in the
same way would still be caught.

Grids are built by stacking independently drawn networks of one shape,
which is exactly how the sweep layer forms its ``(S, m)`` arrays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels as K
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import regime_network_strategy


def _stack(net: BusNetwork, rows: int, seed: int) -> np.ndarray:
    """(rows, m) grid: the drawn network plus jittered siblings."""
    rng = np.random.default_rng(seed)
    base = np.asarray(net.w, dtype=np.float64)
    W = base[None, :] * rng.uniform(0.5, 2.0, (rows, base.size))
    W[0] = base
    return W


@given(regime_network_strategy(min_m=1, max_m=10), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_mass_conservation(net, seed):
    W = _stack(net, 5, seed)
    A = K.allocate_batch(W, net.z, net.kind)
    assert A.shape == W.shape
    assert np.all(A > 0.0)
    np.testing.assert_allclose(A.sum(axis=1), 1.0, rtol=0, atol=1e-12)


@given(regime_network_strategy(min_m=2, max_m=10), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_simultaneous_finish(net, seed):
    # The closed form is optimal iff every processor finishes computing
    # at the same instant; on the batch path that is a row property of
    # finish_times_batch.
    W = _stack(net, 4, seed)
    A = K.allocate_batch(W, net.z, net.kind)
    F = K.finish_times_batch(A, W, net.z, net.kind)
    np.testing.assert_allclose(
        F, np.broadcast_to(F[:, :1], F.shape), rtol=1e-9)


@given(regime_network_strategy(min_m=2, max_m=10), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_excluded_makespans_dominate_inclusive(net, seed):
    # Removing a worker can never shrink the optimal makespan: the
    # leave-one-out splice must dominate the inclusive optimum row-wise.
    W = _stack(net, 3, seed)
    A = K.allocate_batch(W, net.z, net.kind)
    M = K.makespans_batch(A, W, net.z, net.kind)
    E = K.excluded_makespans_batch(W, net.z, net.kind)
    assert E.shape == W.shape
    assert np.all(E >= M[:, None] * (1.0 - 1e-12))


@given(regime_network_strategy(min_m=2, max_m=8), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_truthful_utilities_are_nonnegative(net, seed):
    # Strategyproofness floor: executing exactly as bid earns every
    # agent a nonnegative utility (compensation covers cost, bonus >= 0
    # by the exclusion-dominance property above).
    W = _stack(net, 3, seed)
    U = K.utilities_batch(W, net.z, net.kind, W)
    assert np.all(U >= -1e-12)
