"""Differential suite: batch kernels are byte-identical to the scalar oracle.

Two layers of pinning:

* **Kernel level** — every ``repro.kernels`` function is compared
  row-for-row against its scalar twin with ``np.array_equal`` (bit
  equality, not allclose) across random grids, all three network kinds,
  the degenerate ``m = 1`` case and extreme ``w``/``z`` spreads.
* **Sweep level** — whole plans are executed with the batch task
  registry on and off, serial and sharded, and compared by
  canonical-JSON SHA-256 record digest.  Digest equality is byte
  equality of everything any consumer ever reads.

The scalar path is the oracle: these tests are what allows the sweep
engine to route chunks through one array pass and still advertise the
serial loop's determinism contract.
"""

import numpy as np
import pytest

import repro.kernels as K
from repro.analysis.sensitivity import (
    allocation_sensitivity,
    condition_plan,
    payment_sensitivity,
)
from repro.analysis.strategyproofness import agent_utility, surface_plan
from repro.core.payments import bonus_vector, payments, utilities
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import communication_finish_times, makespan
from repro.sweep import RunOptions, SweepError, run_plan
from repro.sweep.spec import SweepPlan

KINDS = list(NetworkKind)
SIZES = (2, 3, 5, 17, 64)


def _grid(rng, S, m, spread=False):
    W = rng.uniform(0.5, 20.0, (S, m))
    if spread and m >= 2:
        W[0] = np.geomspace(1e-3, 1e3, m)
        W[1] = np.geomspace(1e3, 1e-3, m)
    return W


@pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
@pytest.mark.parametrize("m", SIZES)
class TestKernelBitIdentity:
    def test_allocate_rows_equal_scalar(self, kind, m):
        rng = np.random.default_rng(100 + m)
        W = _grid(rng, 6, m, spread=True)
        A = K.allocate_batch(W, 0.3, kind)
        for s, row in enumerate(W):
            net = BusNetwork(tuple(row), 0.3, kind)
            assert np.array_equal(A[s], allocate(net))

    def test_ready_and_makespans_equal_scalar(self, kind, m):
        rng = np.random.default_rng(200 + m)
        W = _grid(rng, 4, m)
        A = K.allocate_batch(W, 0.3, kind)
        ready = K.communication_finish_times_batch(A, 0.3, kind)
        ms = K.makespans_batch(A, W, 0.3, kind)
        for s, row in enumerate(W):
            net = BusNetwork(tuple(row), 0.3, kind)
            alpha = allocate(net)
            assert np.array_equal(ready[s],
                                  communication_finish_times(alpha, net))
            assert ms[s] == makespan(alpha, net)

    def test_payment_algebra_equals_scalar(self, kind, m):
        rng = np.random.default_rng(300 + m)
        W = _grid(rng, 5, m, spread=True)
        W_exec = W * rng.uniform(1.0, 1.3, W.shape)
        Q = K.payments_batch(W, 0.3, kind, W_exec)
        U = K.utilities_batch(W, 0.3, kind, W_exec)
        B = K.bonus_vector_batch(W, 0.3, kind, W_exec)
        for s, row in enumerate(W):
            net = BusNetwork(tuple(row), 0.3, kind)
            assert np.array_equal(Q[s], payments(net, W_exec[s]))
            assert np.array_equal(U[s], utilities(net, W_exec[s]))
            assert np.array_equal(B[s], bonus_vector(net, W_exec[s]))

    def test_vector_z_equals_per_row_scalar_z(self, kind, m):
        rng = np.random.default_rng(400 + m)
        W = _grid(rng, 5, m)
        zv = rng.uniform(0.1, 0.45, 5)
        A = K.allocate_batch(W, zv, kind)
        for s, row in enumerate(W):
            net = BusNetwork(tuple(row), float(zv[s]), kind)
            assert np.array_equal(A[s], allocate(net))


@pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
class TestDegenerate:
    def test_single_processor_allocation(self, kind):
        A = K.allocate_batch([[3.5]], 0.2, kind)
        net = BusNetwork((3.5,), 0.2, kind)
        assert np.array_equal(A[0], allocate(net))
        assert A.shape == (1, 1) and A[0, 0] == 1.0

    def test_two_processors_payments(self, kind):
        # m=2 exercises every head/tail/originator special case at once.
        W = np.array([[2.0, 7.0], [9.0, 1.5]])
        Q = K.payments_batch(W, 0.4, kind, W)
        for s, row in enumerate(W):
            net = BusNetwork(tuple(row), 0.4, kind)
            assert np.array_equal(Q[s], payments(net, row))


class TestSurfaceKernels:
    @pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
    def test_utility_points_equal_agent_utility(self, kind):
        rng = np.random.default_rng(11)
        w = rng.uniform(1.0, 10.0, 6)
        net = BusNetwork(tuple(w), 0.25, kind)
        bf = np.linspace(0.6, 1.4, 5)
        ef = np.linspace(1.0, 1.8, 5)
        BF, EF = (a.ravel() for a in np.meshgrid(bf, ef, indexing="ij"))
        for i in (0, 2, 5):
            got = K.utility_points_batch(net, i, BF, EF)
            ref = [agent_utility(net, i, bid_factor=float(b),
                                 exec_factor=float(e))
                   for b, e in zip(BF, EF)]
            assert np.array_equal(got, np.asarray(ref))

    @pytest.mark.parametrize("kind", KINDS, ids=lambda k: k.value)
    def test_sensitivities_equal_scalar_probes(self, kind):
        rng = np.random.default_rng(13)
        net = BusNetwork(tuple(rng.uniform(1.0, 10.0, 7)), 0.2, kind)
        idx = np.arange(7)
        ga = K.allocation_sensitivities_batch(net, idx)
        gp = K.payment_sensitivities_batch(net, idx)
        for i in idx:
            assert ga[i] == allocation_sensitivity(net, int(i))
            assert gp[i] == payment_sensitivity(net, int(i))


# ---------------------------------------------------------------------------
# sweep level: digests across batch on/off, worker counts, shard orders
# ---------------------------------------------------------------------------

def _reference_plans():
    rng = np.random.default_rng(23)
    net = BusNetwork(tuple(rng.uniform(1.0, 10.0, 24)), 0.2,
                     NetworkKind.NCP_FE)
    surface = surface_plan(net, 1, [0.7, 1.0, 1.3, 1.6], [1.0, 1.4, 1.9],
                           root_seed=7)
    condition = condition_plan(
        BusNetwork(tuple(rng.uniform(1.0, 10.0, 10)), 0.3,
                   NetworkKind.NCP_NFE))
    return {"utility-point": surface, "sensitivity": condition}


@pytest.fixture(scope="module")
def plans():
    return _reference_plans()


@pytest.fixture(scope="module")
def scalar_serial(plans):
    return {name: run_plan(plan, RunOptions(batch=False))
            for name, plan in plans.items()}


@pytest.mark.parametrize("name", ["utility-point", "sensitivity"])
class TestSweepDigests:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_batch_matches_scalar_at_any_worker_count(
            self, plans, scalar_serial, name, workers):
        batched = run_plan(plans[name], RunOptions(workers=workers))
        assert batched.records == scalar_serial[name].records
        assert batched.digest() == scalar_serial[name].digest()

    def test_batch_matches_scalar_with_shuffled_shards(
            self, plans, scalar_serial, name):
        import random

        plan = plans[name]
        n_chunks = -(-len(plan) // 3)
        order = list(range(n_chunks))
        random.Random(5).shuffle(order)
        batched = run_plan(plan, RunOptions(workers=2, chunk_size=3,
                                            shard_order=order))
        assert batched.digest() == scalar_serial[name].digest()

    def test_scalar_off_switch_matches_too(self, plans, scalar_serial, name):
        sharded_scalar = run_plan(plans[name],
                                  RunOptions(workers=2, batch=False))
        assert sharded_scalar.digest() == scalar_serial[name].digest()


class TestBatchFallback:
    """A failing batch executor must not change error attribution."""

    def _poison_plan(self):
        # Scenario 2 carries an invalid bid factor: the batch kernel
        # rejects the grid, the group falls back, and the scalar task
        # raises on exactly that scenario.
        base = {"w": [2.0, 3.0, 5.0], "z": 0.4, "kind": "ncp-fe", "i": 0,
                "exec_factor": 1.0}
        return SweepPlan.from_grid(
            "utility-point", base, {"bid_factor": [1.0, 1.1, -2.0, 1.3]})

    def test_serial_error_is_scalar_identical(self):
        plan = self._poison_plan()
        with pytest.raises(SweepError) as batch_err:
            run_plan(plan, RunOptions())
        with pytest.raises(SweepError) as scalar_err:
            run_plan(plan, RunOptions(batch=False))
        assert str(batch_err.value) == str(scalar_err.value)
        assert "scenario 2 (utility-point)" in str(batch_err.value)

    def test_sharded_error_is_scalar_identical(self):
        plan = self._poison_plan()
        with pytest.raises(SweepError) as batch_err:
            run_plan(plan, RunOptions(workers=2, chunk_size=2))
        with pytest.raises(SweepError) as scalar_err:
            run_plan(plan, RunOptions(workers=2, chunk_size=2, batch=False))
        assert str(batch_err.value) == str(scalar_err.value)

    def test_unbatched_tasks_are_untouched(self):
        # A task with no batch executor takes the scalar path verbatim.
        plan = SweepPlan.from_grid(
            "resilience-baseline",
            {"w": [2.0, 3.0], "z": 0.4, "kind": "ncp-fe", "num_blocks": 24},
            {"bidding_mode": ["atomic"]})
        on = run_plan(plan, RunOptions())
        off = run_plan(plan, RunOptions(batch=False))
        assert on.digest() == off.digest()
