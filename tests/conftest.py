"""Shared fixtures and instance generators for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.dlt.platform import BusNetwork, NetworkKind

# ---------------------------------------------------------------------------
# hypothesis profile
# ---------------------------------------------------------------------------
# One pinned, deterministic profile for the whole suite: ``derandomize``
# makes every property test draw the same example stream in every run
# (local and CI), so a red hypothesis test always reproduces;
# ``deadline=None`` because protocol-backed properties run a full DES
# engagement per example and per-example wall clock is machine noise,
# not a property.
settings.register_profile(
    "repro-deterministic",
    derandomize=True,
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile("repro-deterministic")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; per-test isolation via fixed seed."""
    return np.random.default_rng(0xD15B)


@pytest.fixture(params=list(NetworkKind), ids=lambda k: k.value)
def kind(request) -> NetworkKind:
    """Parametrize a test across all three system models."""
    return request.param


@pytest.fixture(params=[NetworkKind.NCP_FE, NetworkKind.NCP_NFE],
                ids=lambda k: k.value)
def ncp_kind(request) -> NetworkKind:
    """Parametrize across the two no-control-processor models."""
    return request.param


def make_network(kind: NetworkKind, w, z: float = 0.5) -> BusNetwork:
    return BusNetwork(tuple(float(x) for x in w), z, kind)


# ---------------------------------------------------------------------------
# shared protocol builders
# ---------------------------------------------------------------------------
# The canonical instances the protocol/integration suites exercise, and
# the one build-and-run helper they used to each re-implement.  W4 is
# the default workload; W3 is the smaller engine-suite instance.

PROTO_W3 = [2.0, 3.0, 5.0]
PROTO_W4 = [2.0, 3.0, 5.0, 4.0]
PROTO_Z = 0.4


def run_protocol(kind=NetworkKind.NCP_FE, behaviors=None, *,
                 w=PROTO_W4, z: float = PROTO_Z, **kw):
    """Build and run one DLS-BL-NCP engagement (shared test builder).

    Keyword options are folded into an :class:`EngineConfig` (the
    preferred convention); the legacy-kwarg shim keeps its own explicit
    coverage in ``tests/api/test_facade.py``.
    """
    from repro.core.dls_bl_ncp import DLSBLNCP, EngineConfig

    config = EngineConfig(behaviors=behaviors, **kw)
    return DLSBLNCP(list(w), kind, z, config=config).run()


def crash_plan(victim: str, progress: float = 0.5, phase=None):
    """FaultPlan crashing *victim* mid-phase (default mid-Processing)."""
    from repro.network.faults import CrashFault, FaultPlan
    from repro.protocol.phases import Phase

    return FaultPlan(crashes=(CrashFault(
        victim, phase=phase or Phase.PROCESSING_LOAD, progress=progress),))


def assert_ledger_conserved(outcome, tol: float = 1e-9) -> None:
    """Money neither minted nor burned: all balances sum to ~zero."""
    assert abs(sum(outcome.balances.values())) < tol


@pytest.fixture
def run_ncp():
    """Fixture handle on :func:`run_protocol` for new-style tests."""
    return run_protocol


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

def w_values(min_size: int = 1, max_size: int = 10):
    """Per-unit processing times: positive, moderately heterogeneous.

    The range [0.1, 50] spans 500x heterogeneity without driving the
    chain products into float underflow, matching the closed forms'
    documented domain.
    """
    return st.lists(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False,
                  allow_infinity=False),
        min_size=min_size, max_size=max_size,
    )


def z_values():
    """Bus communication rates over three decades."""
    return st.floats(min_value=0.01, max_value=10.0, allow_nan=False,
                     allow_infinity=False)


def network_strategy(kinds=tuple(NetworkKind), min_m: int = 1, max_m: int = 10):
    """Random BusNetwork instances across kinds and sizes."""
    return st.builds(
        lambda w, z, kind: BusNetwork(tuple(w), z, kind),
        w_values(min_m, max_m),
        z_values(),
        st.sampled_from(list(kinds)),
    )


def regime_network_strategy(kinds=tuple(NetworkKind), min_m: int = 1, max_m: int = 10):
    """Instances in the classical DLT regime: communication faster than
    the slowest useful computation (``z < min(w)``).

    Theorem 2.1's "all processors participate" premise requires this for
    NCP-NFE: with ``z >= w_m`` the originator is better off keeping load
    than paying to ship it (see tests/dlt/test_optimality.py's regime
    boundary test and DESIGN.md).  The fraction 0.8 keeps a margin from
    the boundary so float noise cannot flip optimizer comparisons.
    """
    return st.builds(
        lambda w, frac, kind: BusNetwork(tuple(w), frac * min(w), kind),
        w_values(min_m, max_m),
        st.floats(min_value=0.05, max_value=0.8),
        st.sampled_from(list(kinds)),
    )
