"""Tests for the simulated digital-signature layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import SignedMessage, SigningKey, canonical_bytes


class TestCanonicalBytes:
    def test_dict_key_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_distinct_payloads_distinct_bytes(self):
        assert canonical_bytes({"bid": 1.0}) != canonical_bytes({"bid": 1.0000001})

    def test_rejects_unserializable(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    @given(st.dictionaries(st.text(max_size=8),
                           st.floats(allow_nan=False, allow_infinity=False),
                           max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, payload):
        assert canonical_bytes(payload) == canonical_bytes(dict(payload))


class TestSigningKey:
    def test_sign_verify_roundtrip(self):
        key = SigningKey("P1")
        sm = key.sign({"bid": 3.5, "processor": "P1"})
        assert key.verify(sm)
        assert sm.signer == "P1"

    def test_verification_fails_on_payload_tamper(self):
        key = SigningKey("P1")
        sm = key.sign({"bid": 3.5})
        forged = SignedMessage("P1", {"bid": 1.0}, sm.signature)
        assert not key.verify(forged)

    def test_verification_fails_on_signer_tamper(self):
        key = SigningKey("P1")
        sm = key.sign({"bid": 3.5})
        relabeled = SignedMessage("P2", sm.payload, sm.signature)
        assert not key.verify(relabeled)

    def test_other_key_cannot_forge(self):
        alice, mallory = SigningKey("P1"), SigningKey("P1")
        # Same name, different secret: Mallory's signature does not
        # verify under Alice's key.
        sm = mallory.sign({"bid": 3.5})
        assert not alice.verify(sm)

    def test_deterministic_signature_for_same_payload(self):
        key = SigningKey("P1", secret=b"\x01" * 32)
        assert key.sign({"x": 1}).signature == key.sign({"x": 1}).signature

    def test_repr_hides_secret(self):
        key = SigningKey("P1", secret=b"topsecret" * 4)
        assert "topsecret" not in repr(key)

    def test_size_bytes_positive_and_grows(self):
        key = SigningKey("P1")
        small = key.sign({"q": [1.0]})
        large = key.sign({"q": [1.0] * 100})
        assert 0 < small.size_bytes < large.size_bytes
