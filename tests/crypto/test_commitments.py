"""Tests for hash commitments (paper footnote 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commitments import Commitment, commit, verify_commitment


class TestCommitVerify:
    def test_roundtrip(self):
        c, nonce = commit("P1", {"processor": "P1", "bid": 2.0})
        assert verify_commitment(c, {"processor": "P1", "bid": 2.0}, nonce)
        assert c.committer == "P1"

    def test_binding_different_payload_fails(self):
        c, nonce = commit("P1", {"bid": 2.0})
        assert not verify_commitment(c, {"bid": 2.0000001}, nonce)

    def test_wrong_nonce_fails(self):
        c, nonce = commit("P1", {"bid": 2.0})
        assert not verify_commitment(c, {"bid": 2.0}, b"\x00" * 16)

    def test_hiding_nonce_randomizes_digest(self):
        c1, _ = commit("P1", {"bid": 2.0})
        c2, _ = commit("P1", {"bid": 2.0})
        assert c1.digest != c2.digest  # 2^-128 collision odds

    @given(st.floats(min_value=0.1, max_value=100, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_binding_over_values(self, bid):
        c, nonce = commit("P", {"bid": bid})
        assert verify_commitment(c, {"bid": bid}, nonce)
        assert not verify_commitment(c, {"bid": bid * 1.5 + 1.0}, nonce)

    def test_size_bytes(self):
        c, _ = commit("P1", {"bid": 2.0})
        assert c.size_bytes > 32
