"""Tests for the PKI registry and equivocation proofs."""

import pytest

from repro.crypto.pki import PKI, Principal
from repro.crypto.signatures import SignedMessage, SigningKey


class TestRegistration:
    def test_register_returns_working_key(self):
        pki = PKI()
        key = pki.register("P1")
        assert pki.is_registered("P1")
        assert pki.verify(key.sign({"bid": 2.0}))

    def test_duplicate_registration_rejected(self):
        pki = PKI()
        pki.register("P1")
        with pytest.raises(ValueError, match="already registered"):
            pki.register("P1")

    def test_unknown_identity_never_verifies(self):
        pki = PKI()
        rogue = SigningKey("ghost")
        assert not pki.verify(rogue.sign({"bid": 2.0}))

    def test_unregistered_same_name_key_fails(self):
        # An attacker minting its own key under a registered name still
        # fails: the PKI binds the name to the *registered* secret.
        pki = PKI()
        pki.register("P1")
        imposter = SigningKey("P1")
        assert not pki.verify(imposter.sign({"bid": 2.0}))

    def test_verify_all(self):
        pki = PKI()
        k1, k2 = pki.register("P1"), pki.register("P2")
        good = [k1.sign({"a": 1}), k2.sign({"b": 2})]
        assert pki.verify_all(good)
        bad = good + [SigningKey("P3").sign({"c": 3})]
        assert not pki.verify_all(bad)


class TestEquivocationProof:
    def test_two_distinct_authentic_messages_prove(self):
        pki = PKI()
        key = pki.register("P1")
        a = key.sign({"bid": 2.0})
        b = key.sign({"bid": 3.0})
        assert pki.proves_equivocation(a, b)

    def test_same_message_twice_does_not_prove(self):
        pki = PKI()
        key = pki.register("P1")
        a = key.sign({"bid": 2.0})
        assert not pki.proves_equivocation(a, a)

    def test_different_signers_do_not_prove(self):
        pki = PKI()
        k1, k2 = pki.register("P1"), pki.register("P2")
        assert not pki.proves_equivocation(k1.sign({"bid": 1.0}),
                                           k2.sign({"bid": 2.0}))

    def test_forged_second_message_does_not_prove(self):
        # The heart of Lemma 5.2: without the private key, no one can
        # manufacture the second contradictory message.
        pki = PKI()
        key = pki.register("P1")
        real = key.sign({"bid": 2.0})
        forged = SignedMessage("P1", {"bid": 99.0}, real.signature)
        assert not pki.proves_equivocation(real, forged)


class TestPrincipal:
    def test_value_object(self):
        assert Principal("P1") == Principal("P1")
        assert Principal("P1") != Principal("P2")


class TestVerificationCache:
    def test_repeat_verification_served_from_cache(self):
        pki = PKI()
        key = pki.register("P1")
        sm = key.sign({"bid": 2.0})
        stats = pki.signature_cache.stats
        assert pki.verify(sm)
        assert stats.misses == 1
        assert pki.verify(sm)
        assert pki.verify(sm)
        assert stats.hits == 2 and stats.misses == 1

    def test_rotation_invalidates_cached_verdicts(self):
        # The satellite requirement: re-keying a name must not let a
        # stale cached verdict survive — under either cache layer.
        pki = PKI()
        key = pki.register("P1")
        sm = key.sign({"bid": 2.0})
        assert pki.verify(sm)          # warm object + digest caches
        assert pki.verify(sm)          # object-level fast path
        # A structurally equal copy exercises the digest cache alone
        # (no cached verdict rides on this fresh object).
        copy = SignedMessage(sm.signer, sm.payload, sm.signature)
        assert pki.verify(copy)
        new_key = pki.rotate("P1")
        assert not pki.verify(sm)      # object-cache path invalidated
        assert not pki.verify(SignedMessage(sm.signer, sm.payload,
                                            sm.signature))  # digest path
        assert pki.verify(new_key.sign({"bid": 2.0}))

    def test_forged_variant_keys_separately(self):
        pki = PKI()
        key = pki.register("P1")
        sm = key.sign({"bid": 2.0})
        assert pki.verify(sm)
        forged = SignedMessage("P1", {"bid": 9.9}, sm.signature)
        assert not pki.verify(forged)  # cached True must not leak over

    def test_verify_all_short_circuits_on_first_failure(self):
        pki = PKI()
        k1, k2 = pki.register("P1"), pki.register("P2")
        good1 = k1.sign({"a": 1})
        bad = SignedMessage("P1", {"a": 2}, good1.signature)
        never = k2.sign({"b": 3})
        stats = pki.signature_cache.stats
        assert not pki.verify_all([good1, bad, never])
        # good1 (miss) + bad (miss) were checked; `never` was not.
        assert stats.lookups == 2
        assert pki.verify(never)       # first real verification: a miss
        assert stats.misses == 3
