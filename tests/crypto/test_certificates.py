"""Unit tests for quorum-certificate encoding and verification."""

from dataclasses import replace

import pytest

from repro.crypto.certificates import (
    CERTIFICATE_FORMAT,
    QuorumCertificate,
    value_digest,
    verify_certificate,
    vote_payload,
)
from repro.crypto.pki import PKI

ROSTER = ("referee-1", "referee-2", "referee-3", "referee-4")
VALUE = {"case": "bidding-equivocation", "fines": [
    {"who": "P2", "amount": 10.0, "offence": "equivocation"}],
    "rewards": {"P1": 5.0, "P3": 5.0}, "compensated": {}, "terminates": True}


@pytest.fixture
def world():
    pki = PKI(seed=3)
    keys = {name: pki.register(name) for name in ROSTER}
    return pki, keys


def make_cert(keys, *, voters=ROSTER[:3], case="judge_equivocation#1",
              round_index=0, value=VALUE, threshold=3):
    digest = value_digest(value)
    votes = tuple(keys[name].sign(vote_payload(case, round_index, digest))
                  for name in voters)
    return QuorumCertificate(
        case=case, round_index=round_index, leader=ROSTER[0], value=value,
        votes=votes, committee=ROSTER, threshold=threshold)


class TestVerification:
    def test_valid_certificate_verifies(self, world):
        pki, keys = world
        assert verify_certificate(make_cert(keys), pki)

    def test_below_threshold_fails(self, world):
        pki, keys = world
        cert = make_cert(keys, voters=ROSTER[:2])
        assert not verify_certificate(cert, pki)

    def test_tampered_value_fails(self, world):
        pki, keys = world
        cert = make_cert(keys)
        stolen = dict(VALUE, rewards={"referee-1": 10.0})
        assert not verify_certificate(replace(cert, value=stolen), pki)

    def test_duplicate_voter_fails(self, world):
        pki, keys = world
        cert = make_cert(keys, voters=("referee-1", "referee-1", "referee-2"))
        assert not verify_certificate(cert, pki)

    def test_non_roster_signer_fails(self, world):
        pki, keys = world
        keys["mallory"] = pki.register("mallory")
        cert = make_cert(keys, voters=("referee-1", "referee-2", "mallory"))
        assert not verify_certificate(cert, pki)

    def test_vote_replayed_across_rounds_fails(self, world):
        # A vote binds (case, round, digest): re-badging the certificate
        # under a different round invalidates every signature binding.
        pki, keys = world
        cert = make_cert(keys, round_index=0)
        assert not verify_certificate(replace(cert, round_index=1), pki)

    def test_vote_replayed_across_cases_fails(self, world):
        pki, keys = world
        cert = make_cert(keys, case="judge_equivocation#1")
        assert not verify_certificate(
            replace(cert, case="judge_equivocation#2"), pki)

    def test_leader_off_roster_fails(self, world):
        pki, keys = world
        cert = make_cert(keys)
        assert not verify_certificate(replace(cert, leader="mallory"), pki)

    def test_insane_threshold_fails(self, world):
        pki, keys = world
        cert = make_cert(keys)
        assert not verify_certificate(replace(cert, threshold=0), pki)
        assert not verify_certificate(
            replace(cert, threshold=len(ROSTER) + 1), pki)

    def test_forged_signature_fails(self, world):
        pki, keys = world
        cert = make_cert(keys)
        forged = replace(cert.votes[0],
                         signature=bytes(32))
        assert not verify_certificate(
            replace(cert, votes=(forged,) + cert.votes[1:]), pki)


class TestEncoding:
    def test_to_dict_is_archival(self, world):
        _, keys = world
        doc = make_cert(keys).to_dict()
        assert doc["format"] == CERTIFICATE_FORMAT
        assert doc["digest"] == value_digest(VALUE)
        assert [v["signer"] for v in doc["votes"]] == list(ROSTER[:3])
        for vote in doc["votes"]:
            bytes.fromhex(vote["signature"])  # hex round-trips

    def test_size_bytes_counts_value_and_votes(self, world):
        _, keys = world
        cert = make_cert(keys)
        assert cert.size_bytes > len(cert.votes) * 32
