"""Tests for user-signed load blocks and block quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blocks import (
    blocks_for_fraction,
    divide_load,
    quantize_blocks,
    verify_blocks,
)
from repro.crypto.pki import PKI


@pytest.fixture
def pki_and_key():
    pki = PKI()
    return pki, pki.register("user")


class TestDivideLoad:
    def test_count_and_unit_size(self, pki_and_key):
        _, key = pki_and_key
        blocks = divide_load(key, total_units=2.0, num_blocks=8)
        assert len(blocks) == 8
        assert all(b.size_units == pytest.approx(0.25) for b in blocks)

    def test_identifiers_unique_and_sequential(self, pki_and_key):
        _, key = pki_and_key
        blocks = divide_load(key, num_blocks=10)
        assert [b.block_id for b in blocks] == list(range(10))

    def test_rejects_bad_params(self, pki_and_key):
        _, key = pki_and_key
        with pytest.raises(ValueError):
            divide_load(key, num_blocks=0)
        with pytest.raises(ValueError):
            divide_load(key, total_units=0.0)


class TestVerifyBlocks:
    def test_genuine_blocks_verify(self, pki_and_key):
        pki, key = pki_and_key
        blocks = divide_load(key, num_blocks=5)
        assert verify_blocks(blocks, pki, "user")

    def test_foreign_signature_rejected(self, pki_and_key):
        pki, key = pki_and_key
        mallory = pki.register("mallory")
        fake = divide_load(mallory, num_blocks=1)
        assert not verify_blocks(fake, pki, "user")

    def test_duplicate_block_rejected(self, pki_and_key):
        pki, key = pki_and_key
        blocks = divide_load(key, num_blocks=3)
        assert not verify_blocks(blocks + [blocks[0]], pki, "user")

    def test_payload_mismatch_rejected(self, pki_and_key):
        pki, key = pki_and_key
        from repro.crypto.blocks import LoadBlock

        b = divide_load(key, num_blocks=2)[0]
        tampered = LoadBlock(1, b.digest, b.signed)  # id disagrees with payload
        assert not verify_blocks([tampered], pki, "user")


class TestBlocksForFraction:
    def test_slice_selection(self, pki_and_key):
        _, key = pki_and_key
        blocks = divide_load(key, num_blocks=10)
        out = blocks_for_fraction(blocks, start=2, alpha=0.3)
        assert [b.block_id for b in out] == [2, 3, 4]

    def test_clamps_at_end(self, pki_and_key):
        _, key = pki_and_key
        blocks = divide_load(key, num_blocks=10)
        out = blocks_for_fraction(blocks, start=9, alpha=0.5)
        assert [b.block_id for b in out] == [9]

    def test_empty_input(self):
        assert blocks_for_fraction([], 0, 0.5) == []


class TestQuantizeBlocks:
    def test_exact_fractions(self):
        assert quantize_blocks([0.5, 0.25, 0.25], 8) == [4, 2, 2]

    def test_largest_remainder_assignment(self):
        # 0.4/0.35/0.25 of 10 -> 4, 3.5, 2.5; leftover 1 goes to the
        # larger remainder (index 1 over index 2 only if strictly larger;
        # here both are .5 so the earlier index wins by stable sort).
        counts = quantize_blocks([0.4, 0.35, 0.25], 10)
        assert counts == [4, 4, 2]

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=12),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_sums_to_total(self, raw, n):
        alpha = np.array(raw) / np.sum(raw)
        counts = quantize_blocks(alpha, n)
        assert sum(counts) == n
        assert all(c >= 0 for c in counts)

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=12),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_within_one_block_of_share(self, raw, n):
        alpha = np.array(raw) / np.sum(raw)
        counts = quantize_blocks(alpha, n)
        for a, c in zip(alpha, counts):
            assert abs(c - a * n) < 1.0 + 1e-9

    def test_deterministic(self):
        alpha = [0.123, 0.456, 0.421]
        assert quantize_blocks(alpha, 97) == quantize_blocks(alpha, 97)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            quantize_blocks([-0.1, 1.1], 10)

    def test_rejects_oversum(self):
        with pytest.raises(ValueError):
            quantize_blocks([0.9, 0.9], 10)
