"""Tests for the centralized DLS-BL mechanism (Theorems 3.1 and 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dls_bl import DLSBL
from repro.dlt.platform import NetworkKind
from tests.conftest import regime_network_strategy


class TestApi:
    def test_rejects_bad_z(self):
        with pytest.raises(ValueError):
            DLSBL(NetworkKind.CP, 0.0)

    def test_rejects_single_bid(self):
        with pytest.raises(ValueError):
            DLSBL(NetworkKind.CP, 0.5).run([2.0], [2.0])

    def test_rejects_w_exec_shape(self):
        with pytest.raises(ValueError):
            DLSBL(NetworkKind.CP, 0.5).run([2.0, 3.0], [2.0])

    def test_allocation_matches_closed_form(self, kind):
        from repro.dlt.closed_form import allocate
        from repro.dlt.platform import BusNetwork

        mech = DLSBL(kind, 0.5)
        bids = [2.0, 3.0, 5.0]
        expected = allocate(BusNetwork(tuple(bids), 0.5, kind))
        assert mech.allocate(bids) == pytest.approx(expected)


class TestResultRecord:
    def test_truthful_run_consistency(self, kind):
        mech = DLSBL(kind, 0.5)
        r = mech.truthful_run([2.0, 3.0, 5.0])
        assert r.m == 3
        assert sum(r.alpha) == pytest.approx(1.0)
        assert r.makespan_reported == pytest.approx(r.makespan_realized)
        # Q = C + B elementwise
        for q, c, b in zip(r.payments, r.compensations, r.bonuses):
            assert q == pytest.approx(c + b)
        # U = Q - C (valuation is the observed cost)
        for u, q, c in zip(r.utilities, r.payments, r.compensations):
            assert u == pytest.approx(q - c)
        assert r.user_cost == pytest.approx(sum(r.payments))

    def test_slow_execution_raises_realized_makespan(self, kind):
        mech = DLSBL(kind, 0.5)
        bids = [2.0, 3.0, 5.0]
        slow = mech.run(bids, [2.0, 6.0, 5.0])
        assert slow.makespan_realized > slow.makespan_reported


class TestStrategyproofness:
    """Theorem 3.1: no (bid, execution) deviation beats truth-telling."""

    @given(regime_network_strategy(min_m=2, max_m=7),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=0.3, max_value=3.0))
    @settings(max_examples=120, deadline=None)
    def test_misreporting_never_beats_truth(self, net, i_raw, factor):
        i = i_raw % net.m
        w = np.asarray(net.w)
        mech = DLSBL(net.kind, net.z)
        truthful_u = mech.run(w, w).utilities[i]
        bids = w.copy()
        bids[i] = factor * w[i]
        # The agent cannot execute faster than w_i.  If it underbids it
        # must still take at least w_i per unit; if it overbids it can
        # execute at w_i (or slower, never beneficial).
        w_exec = w.copy()
        deviant_u = mech.run(bids, w_exec).utilities[i]
        assert deviant_u <= truthful_u + 1e-9

    @given(regime_network_strategy(min_m=2, max_m=7),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=1.0, max_value=3.0),
           st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=120, deadline=None)
    def test_joint_bid_and_slack_deviation(self, net, i_raw, bid_f, exec_f):
        # Deviating on both dimensions at once is still dominated.
        i = i_raw % net.m
        w = np.asarray(net.w)
        mech = DLSBL(net.kind, net.z)
        truthful_u = mech.run(w, w).utilities[i]
        bids, w_exec = w.copy(), w.copy()
        bids[i] = bid_f * w[i]
        w_exec[i] = exec_f * w[i]
        assert mech.run(bids, w_exec).utilities[i] <= truthful_u + 1e-9

    def test_dominance_under_others_lies(self):
        # Dominant strategy: truth is best *whatever* the others bid.
        w = np.array([2.0, 3.0, 5.0])
        mech = DLSBL(NetworkKind.CP, 0.4)
        rng = np.random.default_rng(11)
        for _ in range(50):
            others = w * rng.uniform(0.5, 2.0, 3)
            bids_truth = others.copy()
            bids_truth[1] = w[1]
            exec_truth = others.copy()
            exec_truth[1] = w[1]
            u_truth = mech.run(bids_truth, exec_truth).utilities[1]
            lie = float(rng.uniform(0.5, 2.0)) * w[1]
            bids_lie = others.copy()
            bids_lie[1] = lie
            exec_lie = others.copy()
            exec_lie[1] = max(w[1], lie) if lie > w[1] else w[1]
            u_lie = mech.run(bids_lie, exec_lie).utilities[1]
            assert u_lie <= u_truth + 1e-9


class TestVoluntaryParticipation:
    @given(regime_network_strategy(min_m=2, max_m=8))
    @settings(max_examples=100, deadline=None)
    def test_truthful_utility_nonnegative(self, net):
        w = np.asarray(net.w)
        r = DLSBL(net.kind, net.z).run(w, w)
        assert min(r.utilities) >= -1e-10

    @given(regime_network_strategy(min_m=2, max_m=8))
    @settings(max_examples=60, deadline=None)
    def test_payments_cover_truthful_costs(self, net):
        # Q_i = C_i + B_i >= C_i for truthful agents: the user always at
        # least reimburses the work.
        w = np.asarray(net.w)
        r = DLSBL(net.kind, net.z).run(w, w)
        for q, c in zip(r.payments, r.compensations):
            assert q >= c - 1e-10
