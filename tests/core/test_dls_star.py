"""Tests for the star-network mechanism extension (DLS-ST)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dls_bl import DLSBL
from repro.core.dls_star import (
    DLSStar,
    star_bonus_vector,
    star_excluded_makespan,
    star_payments,
    star_utilities,
)
from repro.dlt.architectures import StarNetwork, allocate_star, star_finish_times
from repro.dlt.platform import NetworkKind


def star_instances(min_m=2, max_m=7):
    return st.tuples(
        st.lists(st.floats(min_value=0.5, max_value=20.0),
                 min_size=min_m, max_size=max_m),
        st.lists(st.floats(min_value=0.05, max_value=2.0),
                 min_size=min_m, max_size=max_m),
    ).map(lambda t: (t[0][: min(len(t[0]), len(t[1]))],
                     t[1][: min(len(t[0]), len(t[1]))]))


class TestApi:
    def test_rejects_bad_links(self):
        with pytest.raises(ValueError):
            DLSStar([0.5, 0.0])

    def test_rejects_bid_shape(self):
        with pytest.raises(ValueError):
            DLSStar([0.5, 0.6]).run([2.0], [2.0])

    def test_requires_two_workers_for_exclusion(self):
        star = StarNetwork((2.0,), (0.5,))
        with pytest.raises(ValueError):
            star_excluded_makespan(star, 0)


class TestReductionToBus:
    def test_homogeneous_links_equal_dls_bl_cp(self):
        # z_i == z collapses DLS-ST to DLS-BL on the CP bus: identical
        # allocations, payments and utilities.
        w = [2.0, 3.0, 5.0, 4.0]
        z = 0.5
        star_mech = DLSStar([z] * 4)
        bus_mech = DLSBL(NetworkKind.CP, z)
        rs = star_mech.truthful_run(w)
        rb = bus_mech.truthful_run(w)
        assert rs.alpha == pytest.approx(rb.alpha)
        assert rs.payments == pytest.approx(rb.payments)
        assert rs.utilities == pytest.approx(rb.utilities)
        assert rs.makespan_reported == pytest.approx(rb.makespan_reported)


class TestPaymentAlgebra:
    @given(star_instances())
    @settings(max_examples=60, deadline=None)
    def test_q_equals_c_plus_b_and_u_equals_b(self, inst):
        from repro.core.dls_star import star_optimal_allocation

        w, z = inst
        star = StarNetwork(tuple(w), tuple(z))
        w_exec = np.asarray(w) * 1.2
        q = star_payments(star, w_exec)
        b = star_bonus_vector(star, w_exec)
        alpha = star_optimal_allocation(star)
        assert np.allclose(q, alpha * w_exec + b)
        assert np.allclose(star_utilities(star, w_exec), b)

    def test_slow_execution_reduces_bonus(self):
        star = StarNetwork((2.0, 3.0, 5.0), (0.3, 0.6, 0.4))
        fast = star_bonus_vector(star, [2.0, 3.0, 5.0])
        slow = star_bonus_vector(star, [2.0, 6.0, 5.0])
        assert slow[1] < fast[1]
        assert slow[0] == pytest.approx(fast[0])  # others unaffected


class TestVoluntaryParticipation:
    @given(star_instances())
    @settings(max_examples=60, deadline=None)
    def test_truthful_never_lose_any_links(self, inst):
        # Stars are regime-free (hub = pure distributor): truthful
        # utility >= 0 for arbitrary positive link times.
        w, z = inst
        r = DLSStar(z).truthful_run(w)
        assert min(r.utilities) >= -1e-10


class TestStrategyproofness:
    @given(star_instances(),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=0.4, max_value=2.5))
    @settings(max_examples=80, deadline=None)
    def test_misreport_never_beats_truth(self, inst, i_raw, factor):
        w, z = inst
        w = np.asarray(w)
        i = i_raw % len(w)
        mech = DLSStar(z)
        u_truth = mech.run(w, w).utilities[i]
        bids = w.copy()
        bids[i] = factor * w[i]
        u_lie = mech.run(bids, w).utilities[i]
        assert u_lie <= u_truth + 1e-9

    @given(star_instances(),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=1.0, max_value=2.5))
    @settings(max_examples=60, deadline=None)
    def test_slacking_never_beats_full_speed(self, inst, i_raw, factor):
        w, z = inst
        w = np.asarray(w)
        i = i_raw % len(w)
        mech = DLSStar(z)
        u_truth = mech.run(w, w).utilities[i]
        w_exec = w.copy()
        w_exec[i] = factor * w[i]
        assert mech.run(w, w_exec).utilities[i] <= u_truth + 1e-9


class TestOptimalityLink:
    @given(star_instances())
    @settings(max_examples=40, deadline=None)
    def test_truthful_run_is_simultaneous_finish(self, inst):
        from repro.core.dls_star import canonical_star_order

        w, z = inst
        star = StarNetwork(tuple(w), tuple(z))
        alpha = np.array(DLSStar(z).truthful_run(w).alpha)
        # Finish times are evaluated in the canonical (nondecreasing-z)
        # service order the mechanism actually uses.
        order = canonical_star_order(z)
        T = star_finish_times(alpha[order], star.permuted(order))
        assert np.allclose(T, T[0], rtol=1e-9)

    @given(star_instances(min_m=2, max_m=5))
    @settings(max_examples=40, deadline=None)
    def test_canonical_order_is_globally_best_order(self, inst):
        # Beaumont et al.'s result, verified by enumeration: serving in
        # nondecreasing z is (weakly) optimal among all service orders.
        from repro.core.dls_star import star_optimal_makespan
        from repro.dlt.architectures import star_best_order

        w, z = inst
        star = StarNetwork(tuple(w), tuple(z))
        _, best, _ = star_best_order(star)
        assert star_optimal_makespan(star) <= best + 1e-9

    def test_canonical_order_beats_index_order(self):
        # The LP counterexample that forced the canonical order: served
        # slow-link-first, participation is harmful; served fast-first,
        # everyone participates profitably.
        from repro.core.dls_star import star_optimal_makespan

        star = StarNetwork((1.0, 0.5), (2.0, 1.0))
        index_order_t = float(np.max(
            star_finish_times(allocate_star(star), star)))
        canonical_t = star_optimal_makespan(star)
        boundary_t = 1.0 * 1.0 + 0.5  # ship everything to worker 2
        assert canonical_t < boundary_t < index_order_t
