"""Tests for the compensation-and-bonus payment structure (Eqs. 10-12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payments import (
    bonus,
    bonus_vector,
    compensation,
    excluded_optimal_makespan,
    payments,
    utilities,
)
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import makespan
from tests.conftest import network_strategy, regime_network_strategy


def net_of(w, kind=NetworkKind.CP, z=0.5):
    return BusNetwork(tuple(w), z, kind)


class TestCompensation:
    def test_reimburses_observed_cost(self):
        c = compensation([0.5, 0.3], [2.0, 4.0])
        assert c == pytest.approx([1.0, 1.2])

    def test_zero_allocation_zero_compensation(self):
        assert compensation([0.0], [5.0]) == pytest.approx([0.0])


class TestExcludedMakespan:
    def test_matches_manual_reduction(self, kind):
        net = net_of([2.0, 3.0, 5.0], kind)
        reduced = net.without(1)
        expected = makespan(allocate(reduced), reduced)
        assert excluded_optimal_makespan(net, 1) == pytest.approx(expected)

    def test_requires_two_processors(self, kind):
        with pytest.raises(ValueError, match="m >= 2"):
            excluded_optimal_makespan(net_of([2.0], kind), 0)

    def test_excluding_is_never_faster(self, kind, rng):
        # Removing a processor can only slow the (regime-valid) optimum:
        # this is what makes truthful bonuses non-negative.
        for _ in range(20):
            w = rng.uniform(1, 10, 5)
            net = net_of(w, kind, z=0.3 * float(w.min()))
            full = makespan(allocate(net), net)
            for i in range(5):
                assert excluded_optimal_makespan(net, i) >= full - 1e-12

    def test_originator_exclusion_leaves_a_distributor(self):
        # "P_lo does not participate" on an NCP network removes its
        # compute, not its data: the residual is the CP system over the
        # remaining workers, NOT a smaller NCP network (which would
        # promote another processor into the free-compute slot).
        net = net_of([1.0, 0.5], NetworkKind.NCP_FE, z=1.0)
        cp_residual = BusNetwork((0.5,), 1.0, NetworkKind.CP)
        expected = makespan(allocate(cp_residual), cp_residual)
        assert excluded_optimal_makespan(net, 0) == pytest.approx(expected)
        # and that is slower than the full NCP-FE optimum, as it must be
        assert expected > makespan(allocate(net), net)

    def test_nfe_originator_exclusion(self):
        net = net_of([2.0, 3.0, 4.0], NetworkKind.NCP_NFE, z=0.5)
        cp_residual = BusNetwork((2.0, 3.0), 0.5, NetworkKind.CP)
        expected = makespan(allocate(cp_residual), cp_residual)
        assert excluded_optimal_makespan(net, 2) == pytest.approx(expected)


class TestBonus:
    def test_truthful_bonus_is_marginal_contribution(self, kind):
        net = net_of([2.0, 3.0, 5.0], kind)
        a = allocate(net)
        for i in range(3):
            expected = excluded_optimal_makespan(net, i) - makespan(a, net)
            assert bonus(net, i, net.w[i]) == pytest.approx(expected)

    def test_slow_execution_reduces_bonus(self, kind):
        net = net_of([2.0, 3.0, 5.0], kind)
        assert bonus(net, 1, 6.0) < bonus(net, 1, 3.0)

    def test_bonus_can_go_negative(self, kind):
        # Executing far slower than bid makes the realized makespan
        # exceed the without-me optimum.
        net = net_of([2.0, 3.0, 5.0], kind)
        assert bonus(net, 1, 300.0) < 0

    def test_precomputed_alpha_consistent(self, kind):
        net = net_of([2.0, 3.0, 5.0], kind)
        a = allocate(net)
        assert bonus(net, 1, 3.0, alpha=a) == pytest.approx(bonus(net, 1, 3.0))

    def test_rejects_bad_exec_value(self, kind):
        net = net_of([2.0, 3.0], kind)
        with pytest.raises(ValueError):
            bonus(net, 0, 0.0)
        with pytest.raises(ValueError):
            bonus(net, 0, float("nan"))


class TestPaymentDecomposition:
    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_q_equals_c_plus_b(self, net):
        w_exec = np.asarray(net.w) * 1.1
        q = payments(net, w_exec)
        c = compensation(allocate(net), w_exec)
        b = bonus_vector(net, w_exec)
        assert np.allclose(q, c + b)

    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_utility_equals_bonus(self, net):
        # U_i = Q_i - alpha_i w~_i must collapse to the bonus (Eq. 10-12
        # algebra); this is the identity the whole analysis rides on.
        w_exec = np.asarray(net.w) * 1.25
        assert np.allclose(utilities(net, w_exec), bonus_vector(net, w_exec))

    def test_shape_validation(self, kind):
        net = net_of([2.0, 3.0], kind)
        with pytest.raises(ValueError):
            payments(net, [2.0])
        with pytest.raises(ValueError):
            payments(net, [2.0, -3.0])


class TestTruthfulProperties:
    @given(network_strategy(kinds=(NetworkKind.CP, NetworkKind.NCP_FE),
                            min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_voluntary_participation_truthful_cp_fe(self, net):
        # Theorem 3.2: truthful, full-speed agents never lose.  Holds at
        # any z for CP and NCP-FE (their closed forms are globally
        # optimal at any z, so exclusion can never beat participation).
        u = utilities(net, np.asarray(net.w))
        assert np.all(u >= -1e-10)

    @given(regime_network_strategy(kinds=(NetworkKind.NCP_NFE,),
                                   min_m=2, max_m=8))
    @settings(max_examples=80, deadline=None)
    def test_voluntary_participation_truthful_nfe_in_regime(self, net):
        # For NCP-NFE, Algorithm 2.2 is optimal only in the DLT regime
        # (z < w_m); voluntary participation inherits that premise.
        u = utilities(net, np.asarray(net.w))
        assert np.all(u >= -1e-10)

    def test_nfe_out_of_regime_can_lose(self):
        # Documentation of the regime boundary: out of regime the
        # interior closed form exceeds the pure-distributor exclusion
        # makespan and a truthful non-originator's bonus goes negative.
        net = net_of([1.0, 1.0], NetworkKind.NCP_NFE, z=2.0)
        u = utilities(net, np.asarray(net.w))
        assert np.min(u) < 0
