"""Tests for the fine policy (F >= sum of compensations)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.fines import FinePolicy
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import network_strategy


class TestFineAmount:
    def test_base_is_projected_compensation(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        policy = FinePolicy(safety_factor=1.0)
        alpha = allocate(net)
        expected = float(alpha @ np.array(net.w))
        assert policy.compensation_base(net) == pytest.approx(expected)
        assert policy.fine_amount(net) == pytest.approx(expected)

    def test_safety_factor_scales(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        assert FinePolicy(3.0).fine_amount(net) == pytest.approx(
            3.0 * FinePolicy(1.0).fine_amount(net))

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            FinePolicy(0.0)

    @given(network_strategy(min_m=2, max_m=8))
    @settings(max_examples=60, deadline=None)
    def test_paper_bound_satisfied_at_factor_geq_one(self, net):
        # F >= sum_j alpha_j w_j when everyone executes as bid.
        assert FinePolicy(1.0).satisfies_paper_bound(net)
        assert FinePolicy(2.5).satisfies_paper_bound(net)

    def test_paper_bound_with_slow_execution(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        w_slow = np.array(net.w) * 1.8
        assert not FinePolicy(1.0).satisfies_paper_bound(net, w_exec=w_slow)
        assert FinePolicy(2.0).satisfies_paper_bound(net, w_exec=w_slow)

    def test_sub_threshold_factor_allowed_for_experiments(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        assert not FinePolicy(0.5).satisfies_paper_bound(net)


class TestRedistribution:
    def test_even_split(self):
        assert FinePolicy.informer_reward(6.0, 3) == pytest.approx(2.0)

    def test_single_beneficiary_takes_all(self):
        assert FinePolicy.informer_reward(5.0, 1) == pytest.approx(5.0)

    def test_rejects_no_beneficiaries(self):
        with pytest.raises(ValueError):
            FinePolicy.informer_reward(5.0, 0)
