"""Tests for the linear daisy-chain mechanism extension (DLS-LN)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dls_chain import (
    DLSChain,
    chain_bonus_vector,
    chain_excluded_makespan,
    chain_payments,
    chain_utilities,
)
from repro.dlt.architectures import allocate_linear, linear_finish_times


def regime_chain_instances(min_m=2, max_m=6):
    """Chains comfortably inside the participation regime."""
    def build(w, fracs):
        m = min(len(w), len(fracs) + 1)
        w = w[:m]
        hops = [f * min(w) / (m * 4) for f in fracs[: m - 1]]
        return list(w), hops

    return st.builds(
        build,
        st.lists(st.floats(min_value=1.0, max_value=10.0), min_size=min_m,
                 max_size=max_m),
        st.lists(st.floats(min_value=0.1, max_value=1.0), min_size=min_m - 1,
                 max_size=max_m - 1),
    )


class TestApi:
    def test_rejects_bad_hops(self):
        with pytest.raises(ValueError):
            DLSChain([0.5, 0.0])

    def test_m_from_hops(self):
        assert DLSChain([0.1, 0.2]).m == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            DLSChain([0.1]).run([2.0, 3.0, 4.0], [2.0, 3.0, 4.0])

    def test_excluded_requires_two(self):
        with pytest.raises(ValueError):
            chain_excluded_makespan([2.0], [], 0)


class TestExclusionSemantics:
    def test_interior_relay_merges_hops(self):
        # Removing interior node 1's compute: hops 0 and 1 merge.
        w = [2.0, 3.0, 4.0]
        hops = [0.1, 0.2]
        t = chain_excluded_makespan(w, hops, 1)
        reduced = allocate_linear([2.0, 4.0], [0.3])
        expected = float(np.max(linear_finish_times(reduced, [2.0, 4.0], [0.3])))
        assert t == pytest.approx(expected)

    def test_tail_exclusion_drops_hop(self):
        w = [2.0, 3.0, 4.0]
        hops = [0.1, 0.2]
        t = chain_excluded_makespan(w, hops, 2)
        reduced = allocate_linear([2.0, 3.0], [0.1])
        expected = float(np.max(linear_finish_times(reduced, [2.0, 3.0], [0.1])))
        assert t == pytest.approx(expected)

    def test_head_exclusion_pays_entry_delay(self):
        # The head still holds the data; a pure-relay head delays the
        # whole engagement by hop0 * (full load).
        w = [2.0, 3.0, 4.0]
        hops = [0.1, 0.2]
        t = chain_excluded_makespan(w, hops, 0)
        reduced = allocate_linear([3.0, 4.0], [0.2])
        expected = 0.1 + float(np.max(
            linear_finish_times(reduced, [3.0, 4.0], [0.2])))
        assert t == pytest.approx(expected)

    def test_exclusion_never_faster_in_regime(self):
        w = [2.0, 3.0, 4.0, 5.0]
        hops = [0.05, 0.08, 0.04]
        full = float(np.max(linear_finish_times(
            allocate_linear(w, hops), w, hops)))
        for i in range(4):
            assert chain_excluded_makespan(w, hops, i) >= full - 1e-12


class TestPaymentAlgebra:
    @given(regime_chain_instances())
    @settings(max_examples=50, deadline=None)
    def test_identities(self, inst):
        w, hops = inst
        mech = DLSChain(hops)
        assume(mech.in_regime(w))
        w_exec = np.asarray(w) * 1.15
        q = chain_payments(w, hops, w_exec)
        b = chain_bonus_vector(w, hops, w_exec)
        alpha = allocate_linear(np.asarray(w), np.asarray(hops))
        assert np.allclose(q, alpha * w_exec + b)
        assert np.allclose(chain_utilities(w, hops, w_exec), b)


class TestMechanismProperties:
    @given(regime_chain_instances())
    @settings(max_examples=60, deadline=None)
    def test_voluntary_participation(self, inst):
        w, hops = inst
        mech = DLSChain(hops)
        assume(mech.in_regime(w))
        r = mech.truthful_run(w)
        assert min(r.utilities) >= -1e-9

    @given(regime_chain_instances(),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_strategyproofness_in_regime(self, inst, i_raw, factor):
        w, hops = inst
        w = np.asarray(w)
        i = i_raw % len(w)
        mech = DLSChain(hops)
        assume(mech.in_regime(w))
        bids = w.copy()
        bids[i] *= factor
        assume(mech.in_regime(bids))
        u_truth = mech.run(w, w).utilities[i]
        u_lie = mech.run(bids, w).utilities[i]
        assert u_lie <= u_truth + 1e-9

    @given(regime_chain_instances(),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_slacking_dominated(self, inst, i_raw, factor):
        w, hops = inst
        w = np.asarray(w)
        i = i_raw % len(w)
        mech = DLSChain(hops)
        assume(mech.in_regime(w))
        w_exec = w.copy()
        w_exec[i] *= factor
        u_truth = mech.run(w, w).utilities[i]
        assert mech.run(w, w_exec).utilities[i] <= u_truth + 1e-9


class TestRegime:
    def test_linear_chain_is_regime_free(self):
        # Under linear costs the equal-finish shares stay positive for
        # arbitrarily expensive links (they decay geometrically), so the
        # chain has no participation boundary — unlike NCP-NFE or the
        # affine model.
        for hops in ([0.05, 0.05], [5.0, 5.0], [100.0, 100.0]):
            assert DLSChain(hops).in_regime([1.0, 1.0, 1.0])

    def test_expensive_links_starve_the_tail_but_properties_hold(self):
        mech = DLSChain([10.0, 10.0])
        w = [1.0, 1.0, 1.0]
        r = mech.truthful_run(w)
        assert r.alpha[0] > 0.9          # head hoards the load
        assert r.alpha[2] < 0.01         # tail nearly idle...
        assert min(r.utilities) >= -1e-9  # ...but still never loses
