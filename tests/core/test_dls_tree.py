"""Tests for the tree mechanism extension (DLS-TR)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dls_tree import (
    DLSTree,
    tree_bonus,
    tree_excluded_makespan,
    tree_with_bids,
)
from repro.dlt.architectures import allocate_tree, collapse_tree, tree_finish_times


def simple_tree(zs=(0.3, 0.2, 0.4)):
    g = nx.DiGraph()
    g.add_node("r", w=4.0)
    g.add_node("a", w=3.0)
    g.add_node("b", w=6.0)
    g.add_node("a1", w=2.0)
    g.add_edge("r", "a", z=zs[0])
    g.add_edge("r", "b", z=zs[1])
    g.add_edge("a", "a1", z=zs[2])
    return g


def random_tree_strategy(min_n=2, max_n=7):
    def build(ws, zs, parents):
        n = min(len(ws), len(zs) + 1, len(parents) + 1)
        g = nx.DiGraph()
        names = [f"n{i}" for i in range(n)]
        g.add_node(names[0], w=ws[0])
        for i in range(1, n):
            g.add_node(names[i], w=ws[i])
            parent = names[parents[i - 1] % i]
            g.add_edge(parent, names[i], z=zs[i - 1])
        return g, names

    return st.builds(
        build,
        st.lists(st.floats(min_value=0.5, max_value=10), min_size=min_n,
                 max_size=max_n),
        st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=min_n - 1,
                 max_size=max_n - 1),
        st.lists(st.integers(min_value=0, max_value=10), min_size=min_n - 1,
                 max_size=max_n - 1),
    )


class TestApi:
    def test_requires_arborescence(self):
        g = nx.DiGraph()
        g.add_node("a", w=1.0)
        g.add_node("b", w=1.0)
        g.add_edge("a", "b", z=0.1)
        g.add_edge("b", "a", z=0.1)
        with pytest.raises(ValueError):
            DLSTree(g, "a")

    def test_requires_two_nodes(self):
        g = nx.DiGraph()
        g.add_node("a", w=1.0)
        with pytest.raises(ValueError):
            DLSTree(g, "a")

    def test_requires_positive_links(self):
        g = simple_tree()
        g.edges["r", "a"]["z"] = 0.0
        with pytest.raises(ValueError):
            DLSTree(g, "r")

    def test_bids_validation(self):
        g = simple_tree()
        with pytest.raises(ValueError, match="missing bids"):
            tree_with_bids(g, {"r": 1.0})
        with pytest.raises(KeyError):
            tree_with_bids(g, {"ghost": 1.0})
        with pytest.raises(ValueError):
            tree_with_bids(g, {"r": -1.0, "a": 1.0, "b": 1.0, "a1": 1.0})

    def test_missing_exec_rejected(self):
        mech = DLSTree(simple_tree(), "r")
        w = {"r": 4.0, "a": 3.0, "b": 6.0, "a1": 2.0}
        bad = dict(w)
        del bad["b"]
        with pytest.raises(ValueError, match="w_exec"):
            mech.run(w, bad)


class TestCanonicalOrder:
    def test_insertion_order_irrelevant(self):
        # Same topology inserted in two different child orders must
        # produce identical mechanism outcomes.
        g1 = nx.DiGraph()
        g1.add_node("r", w=4.0)
        g1.add_node("a", w=3.0)
        g1.add_node("b", w=6.0)
        g1.add_edge("r", "a", z=0.5)   # slow link inserted first
        g1.add_edge("r", "b", z=0.1)
        g2 = nx.DiGraph()
        g2.add_node("r", w=4.0)
        g2.add_node("b", w=6.0)
        g2.add_node("a", w=3.0)
        g2.add_edge("r", "b", z=0.1)   # fast link inserted first
        g2.add_edge("r", "a", z=0.5)
        w = {"r": 4.0, "a": 3.0, "b": 6.0}
        r1 = DLSTree(g1, "r").truthful_run(w)
        r2 = DLSTree(g2, "r").truthful_run(w)
        assert r1.makespan_reported == pytest.approx(r2.makespan_reported)
        assert sorted(r1.payments) == pytest.approx(sorted(r2.payments))

    def test_canonical_beats_bad_order(self):
        # The reordering is not cosmetic: it strictly improves the
        # makespan when the insertion order was fast-link-last.
        g_bad = nx.DiGraph()
        g_bad.add_node("r", w=2.0)
        g_bad.add_node("slow", w=2.0)
        g_bad.add_node("fast", w=2.0)
        g_bad.add_edge("r", "slow", z=3.0)
        g_bad.add_edge("r", "fast", z=0.1)
        t_bad = collapse_tree(g_bad, "r").w_equivalent
        mech = DLSTree(g_bad, "r")
        t_canon = collapse_tree(mech.topology, "r").w_equivalent
        assert t_canon < t_bad


class TestExclusionSemantics:
    def test_leaf_exclusion_drops_node(self):
        g = tree_with_bids(simple_tree(),
                           {"r": 4.0, "a": 3.0, "b": 6.0, "a1": 2.0})
        t = tree_excluded_makespan(g, "r", "b")
        reduced = g.copy()
        reduced.remove_node("b")
        assert t == pytest.approx(collapse_tree(reduced, "r").w_equivalent)

    def test_internal_exclusion_keeps_relay(self):
        g = tree_with_bids(simple_tree(),
                           {"r": 4.0, "a": 3.0, "b": 6.0, "a1": 2.0})
        t = tree_excluded_makespan(g, "r", "a")
        assert t == pytest.approx(
            collapse_tree(g, "r", disabled={"a"}).w_equivalent)
        # a1 is still reachable through the relay: the exclusion value is
        # finite and larger than full participation.
        full = collapse_tree(g, "r").w_equivalent
        assert full < t < np.inf

    def test_root_exclusion_is_relay(self):
        g = tree_with_bids(simple_tree(),
                           {"r": 4.0, "a": 3.0, "b": 6.0, "a1": 2.0})
        t = tree_excluded_makespan(g, "r", "r")
        assert t == pytest.approx(
            collapse_tree(g, "r", disabled={"r"}).w_equivalent)


class TestMechanismProperties:
    @given(random_tree_strategy())
    @settings(max_examples=60, deadline=None)
    def test_voluntary_participation_any_links(self, built):
        g, names = built
        mech = DLSTree(g, names[0])
        w = {n: g.nodes[n]["w"] for n in names}
        r = mech.truthful_run(w)
        assert min(r.utilities) >= -1e-9

    @given(random_tree_strategy(),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=0.4, max_value=2.5))
    @settings(max_examples=80, deadline=None)
    def test_strategyproofness_any_links(self, built, i_raw, factor):
        g, names = built
        mech = DLSTree(g, names[0])
        w = {n: g.nodes[n]["w"] for n in names}
        node = names[i_raw % len(names)]
        idx = mech.nodes.index(node)
        u_truth = mech.truthful_run(w).utilities[idx]
        bids = dict(w)
        bids[node] = factor * w[node]
        assert mech.run(bids, w).utilities[idx] <= u_truth + 1e-9

    @given(random_tree_strategy(),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=1.0, max_value=2.5))
    @settings(max_examples=50, deadline=None)
    def test_slacking_dominated(self, built, i_raw, factor):
        g, names = built
        mech = DLSTree(g, names[0])
        w = {n: g.nodes[n]["w"] for n in names}
        node = names[i_raw % len(names)]
        idx = mech.nodes.index(node)
        u_truth = mech.truthful_run(w).utilities[idx]
        w_exec = dict(w)
        w_exec[node] = factor * w[node]
        assert mech.run(w, w_exec).utilities[idx] <= u_truth + 1e-9

    def test_payment_identities(self):
        mech = DLSTree(simple_tree(), "r")
        w = {"r": 4.0, "a": 3.0, "b": 6.0, "a1": 2.0}
        r = mech.truthful_run(w)
        for q, c, b in zip(r.payments, r.compensations, r.bonuses):
            assert q == pytest.approx(c + b)
        for u, b in zip(r.utilities, r.bonuses):
            assert u == pytest.approx(b)
