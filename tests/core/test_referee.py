"""Unit tests for the referee's evidence judging (offences i-v)."""

import numpy as np
import pytest

from repro.core.fines import FinePolicy
from repro.core.payments import payments as compute_payments
from repro.core.referee import Fine, Referee, RefereeVerdict
from repro.crypto.blocks import divide_load, quantize_blocks
from repro.crypto.pki import PKI
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind

PARTICIPANTS = ["P1", "P2", "P3"]
Z = 0.5
KIND = NetworkKind.NCP_FE
FINE = 10.0


@pytest.fixture
def setup():
    pki = PKI()
    keys = {n: pki.register(n) for n in PARTICIPANTS}
    user = pki.register("user")
    referee = Referee(pki, FinePolicy())
    return pki, keys, user, referee


def signed_bid(keys, name, bid):
    return keys[name].sign({"processor": name, "bid": bid})


def bid_vector(keys, bids):
    return [signed_bid(keys, n, b) for n, b in bids.items()]


class TestEquivocationJudging:
    def test_proven_equivocation_fines_accused(self, setup):
        _, keys, _, referee = setup
        a = signed_bid(keys, "P2", 2.0)
        b = signed_bid(keys, "P2", 3.0)
        v = referee.judge_equivocation("P1", "P2", (a, b), PARTICIPANTS, FINE)
        assert v.fined_names == ("P2",)
        assert v.fines[0].offence == "equivocation"
        assert v.terminates

    def test_reward_split_among_others(self, setup):
        _, keys, _, referee = setup
        a, b = signed_bid(keys, "P2", 2.0), signed_bid(keys, "P2", 3.0)
        v = referee.judge_equivocation("P1", "P2", (a, b), PARTICIPANTS, FINE)
        assert v.rewards == {"P1": pytest.approx(5.0), "P3": pytest.approx(5.0)}
        assert v.total_collected == pytest.approx(v.total_distributed)

    def test_unfounded_claim_fines_claimant(self, setup):
        _, keys, _, referee = setup
        a = signed_bid(keys, "P2", 2.0)
        v = referee.judge_equivocation("P1", "P2", (a, a), PARTICIPANTS, FINE)
        assert v.fined_names == ("P1",)
        assert v.fines[0].offence == "unsubstantiated-claim"
        assert "P2" in v.rewards and "P3" in v.rewards

    def test_forged_evidence_fines_claimant(self, setup):
        from repro.crypto.signatures import SignedMessage

        _, keys, _, referee = setup
        real = signed_bid(keys, "P2", 2.0)
        forged = SignedMessage("P2", {"processor": "P2", "bid": 9.0}, real.signature)
        v = referee.judge_equivocation("P1", "P2", (real, forged), PARTICIPANTS, FINE)
        assert v.fined_names == ("P1",)

    def test_accusation_against_wrong_name(self, setup):
        _, keys, _, referee = setup
        a, b = signed_bid(keys, "P2", 2.0), signed_bid(keys, "P2", 3.0)
        # Evidence proves P2 equivocated, but the claim accuses P3.
        v = referee.judge_equivocation("P1", "P3", (a, b), PARTICIPANTS, FINE)
        assert v.fined_names == ("P1",)


class TestAllocationDisputes:
    def _judge(self, setup, *, received_blocks, claimant_blocks=None,
               claimant_vector=None, originator_vector=None,
               cooperates=True, num_blocks=100, work_done=None):
        pki, keys, user, referee = setup
        bids = {"P1": 2.0, "P2": 3.0, "P3": 5.0}
        return referee.judge_allocation_dispute(
            claimant="P2",
            originator="P1",
            claimant_vector=claimant_vector or bid_vector(keys, bids),
            originator_vector=originator_vector or bid_vector(keys, bids),
            participants=PARTICIPANTS,
            order=PARTICIPANTS,
            kind=KIND,
            z=Z,
            received_blocks=received_blocks,
            num_blocks=num_blocks,
            claimant_blocks=claimant_blocks or [],
            user_name="user",
            fine=FINE,
            work_done=work_done,
            originator_cooperates=cooperates,
        )

    def entitled(self, num_blocks=100):
        net = BusNetwork((2.0, 3.0, 5.0), Z, KIND)
        return quantize_blocks(allocate(net), num_blocks)[1]

    def test_under_assignment_fines_originator(self, setup):
        e = self.entitled()
        v = self._judge(setup, received_blocks=e - 2)
        assert v.fined_names == ("P1",)
        assert v.fines[0].offence == "under-assignment"

    def test_refused_remedy_label(self, setup):
        e = self.entitled()
        v = self._judge(setup, received_blocks=e - 2, cooperates=False)
        assert v.fines[0].offence == "refused-remedy"

    def test_over_assignment_fines_originator_with_block_proof(self, setup):
        _, keys, user, _ = setup
        e = self.entitled()
        blocks = divide_load(user, 1.0, 100)[: e + 3]
        v = self._judge(setup, received_blocks=e + 3, claimant_blocks=blocks)
        assert v.fined_names == ("P1",)
        assert v.fines[0].offence == "over-assignment"

    def test_over_claim_without_blocks_fines_claimant(self, setup):
        e = self.entitled()
        v = self._judge(setup, received_blocks=e + 3, claimant_blocks=[])
        assert v.fined_names == ("P2",)
        assert v.fines[0].offence == "unsubstantiated-claim"

    def test_false_claim_when_count_correct(self, setup):
        e = self.entitled()
        v = self._judge(setup, received_blocks=e)
        assert v.fined_names == ("P2",)

    def test_manipulated_own_entry_detected_as_equivocation(self, setup):
        pki, keys, user, referee = setup
        bids = {"P1": 2.0, "P2": 3.0, "P3": 5.0}
        lied = dict(bids, P2=9.0)
        v = self._judge(setup,
                        received_blocks=self.entitled(),
                        claimant_vector=bid_vector(keys, lied))
        # P2's entry differs between the two authentic vectors: only P2
        # could have signed both versions.
        assert v.fined_names == ("P2",)
        assert v.fines[0].offence == "equivocated-bid"

    def test_unverifiable_vector_fines_submitter(self, setup):
        from repro.crypto.signatures import SigningKey

        pki, keys, user, referee = setup
        rogue = SigningKey("P3")  # unregistered key for P3's entry
        bids = {"P1": 2.0, "P2": 3.0}
        vec = bid_vector(keys, bids) + [rogue.sign({"processor": "P3", "bid": 1.0})]
        v = self._judge(setup, received_blocks=self.entitled(),
                        claimant_vector=vec)
        assert "P2" in v.fined_names  # the claimant submitted a bad vector

    def test_incomplete_vector_fines_submitter(self, setup):
        _, keys, _, _ = setup
        vec = bid_vector(keys, {"P1": 2.0, "P2": 3.0})  # P3 missing
        v = self._judge(setup, received_blocks=self.entitled(),
                        originator_vector=vec)
        assert "P1" in v.fined_names

    def test_work_done_compensated_first(self, setup):
        e = self.entitled()
        v = self._judge(setup, received_blocks=e - 1,
                        work_done={"P1": 1.5})
        assert v.compensated == {}  # P1 is the fined party; no self-comp
        v2 = self._judge(setup, received_blocks=e - 1,
                         work_done={"P3": 1.5})
        assert v2.compensated == {"P3": pytest.approx(1.5)}
        # remainder split among non-deviants
        assert v2.total_distributed == pytest.approx(v2.total_collected)


class TestPaymentJudging:
    def _submissions(self, setup, scale_for=None, contradict=None, omit=None):
        pki, keys, user, referee = setup
        bids = {"P1": 2.0, "P2": 3.0, "P3": 5.0}
        w_exec = dict(bids)
        net = BusNetwork((2.0, 3.0, 5.0), Z, KIND)
        q = compute_payments(net, np.array([2.0, 3.0, 5.0]))
        subs = {}
        for name in PARTICIPANTS:
            if name == omit:
                continue
            vec = [float(x) for x in q]
            if name == scale_for:
                vec = [x * 2 for x in vec]
            msgs = [keys[name].sign({"processor": name, "Q": vec})]
            if name == contradict:
                msgs.append(keys[name].sign({"processor": name,
                                             "Q": [x * 3 for x in vec]}))
            subs[name] = msgs
        return referee, subs, bids, w_exec

    def _judge(self, referee, subs, bids, w_exec):
        return referee.judge_payment_vectors(
            subs, participants=PARTICIPANTS, order=PARTICIPANTS,
            bids=bids, w_exec=w_exec, kind=KIND, z=Z, fine=FINE)

    def test_all_correct_no_action(self, setup):
        referee, subs, bids, w_exec = self._submissions(setup)
        v = self._judge(referee, subs, bids, w_exec)
        assert v.fines == ()
        assert not v.terminates

    def test_incorrect_vector_fined(self, setup):
        referee, subs, bids, w_exec = self._submissions(setup, scale_for="P2")
        v = self._judge(referee, subs, bids, w_exec)
        assert v.fined_names == ("P2",)
        assert v.fines[0].offence == "incorrect-payments"
        # xF/(m-x): 1 * 10 / 2 = 5 each
        assert v.rewards == {"P1": pytest.approx(5.0), "P3": pytest.approx(5.0)}

    def test_contradictory_vectors_fined(self, setup):
        referee, subs, bids, w_exec = self._submissions(setup, contradict="P3")
        v = self._judge(referee, subs, bids, w_exec)
        assert v.fined_names == ("P3",)
        assert v.fines[0].offence == "contradictory-payment-vectors"

    def test_missing_vector_fined(self, setup):
        referee, subs, bids, w_exec = self._submissions(setup, omit="P1")
        v = self._judge(referee, subs, bids, w_exec)
        assert v.fined_names == ("P1",)
        assert v.fines[0].offence == "missing-payment-vector"

    def test_multiple_offenders(self, setup):
        referee, subs, bids, w_exec = self._submissions(setup, scale_for="P1",
                                                        contradict="P2")
        v = self._judge(referee, subs, bids, w_exec)
        assert set(v.fined_names) == {"P1", "P2"}
        # 2F to the single correct processor
        assert v.rewards == {"P3": pytest.approx(2 * FINE)}

    def test_malformed_payload_fined(self, setup):
        pki, keys, user, referee = setup
        bids = {"P1": 2.0, "P2": 3.0, "P3": 5.0}
        net = BusNetwork((2.0, 3.0, 5.0), Z, KIND)
        q = compute_payments(net, np.array([2.0, 3.0, 5.0]))
        subs = {n: [keys[n].sign({"processor": n, "Q": [float(x) for x in q]})]
                for n in PARTICIPANTS}
        subs["P2"] = [keys["P2"].sign({"processor": "P2", "oops": True})]
        v = self._judge(referee, subs, bids, bids)
        assert v.fined_names == ("P2",)
        assert v.fines[0].offence == "malformed-payment-vector"


class TestVerdictInvariants:
    def test_money_conservation_every_case(self, setup):
        _, keys, _, referee = setup
        a, b = signed_bid(keys, "P2", 2.0), signed_bid(keys, "P2", 3.0)
        v = referee.judge_equivocation("P1", "P2", (a, b), PARTICIPANTS, FINE)
        assert v.total_distributed <= v.total_collected + 1e-12

    def test_fine_dataclass(self):
        f = Fine("P1", 5.0, "equivocation")
        assert f.who == "P1" and f.amount == 5.0
