"""Unit tests for the referee's cross-archive bid-equivocation check."""

import pytest

from repro.core.fines import FinePolicy
from repro.core.referee import Referee
from repro.crypto.pki import PKI
from repro.crypto.signatures import SignedMessage, SigningKey


@pytest.fixture
def world():
    pki = PKI()
    keys = {n: pki.register(n) for n in ("P1", "P2", "P3")}
    return pki, keys, Referee(pki, FinePolicy())


def bid(keys, name, value):
    return keys[name].sign({"processor": name, "bid": value})


class TestBidEquivocators:
    def test_consistent_archives_clean(self, world):
        pki, keys, referee = world
        vec = [bid(keys, n, v) for n, v in
               (("P1", 2.0), ("P2", 3.0), ("P3", 5.0))]
        archives = {"P1": vec, "P2": vec, "P3": vec}
        assert referee._bid_equivocators(archives) == set()

    def test_split_bid_detected(self, world):
        pki, keys, referee = world
        base = [bid(keys, "P1", 2.0), bid(keys, "P3", 5.0)]
        archives = {
            "P1": base + [bid(keys, "P2", 3.0)],
            "P3": base + [bid(keys, "P2", 1.5)],  # P2 told P3 a different story
        }
        assert referee._bid_equivocators(archives) == {"P2"}

    def test_forged_entries_ignored(self, world):
        pki, keys, referee = world
        rogue = SigningKey("P2")  # unregistered key
        archives = {
            "P1": [bid(keys, "P2", 3.0)],
            "P3": [rogue.sign({"processor": "P2", "bid": 9.0})],
        }
        # The forged copy never verifies: only one authentic P2 bid
        # exists, so no equivocation.
        assert referee._bid_equivocators(archives) == set()

    def test_identity_mismatch_ignored(self, world):
        pki, keys, referee = world
        evil = keys["P3"].sign({"processor": "P2", "bid": 9.0})
        archives = {
            "P1": [bid(keys, "P2", 3.0)],
            "P3": [evil],
        }
        assert referee._bid_equivocators(archives) == set()

    def test_multiple_equivocators(self, world):
        pki, keys, referee = world
        archives = {
            "P1": [bid(keys, "P2", 3.0), bid(keys, "P3", 5.0)],
            "P2": [bid(keys, "P2", 4.0), bid(keys, "P3", 6.0)],
        }
        assert referee._bid_equivocators(archives) == {"P2", "P3"}
