"""Property-based verification of the mechanism guarantees.

The paper's Section 4/5 claims, checked over randomly drawn markets by
running full DLS-BL-NCP engagements (not the closed forms alone): each
example is a complete protocol run, so ``max_examples`` stays modest —
the deterministic Hypothesis profile makes every run identical anyway.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlt.platform import NetworkKind
from tests.conftest import assert_ledger_conserved, run_protocol

TOL = 1e-9


def market_strategy(min_m=2, max_m=5):
    """(w, z, kind) triples in the participation regime ``z < min(w)``."""
    return st.tuples(
        st.lists(st.floats(min_value=1.0, max_value=10.0),
                 min_size=min_m, max_size=max_m),
        st.floats(min_value=0.05, max_value=0.8),
        st.sampled_from([NetworkKind.NCP_FE, NetworkKind.NCP_NFE]),
    ).map(lambda t: (t[0], t[1] * min(t[0]), t[2]))


class TestTruthfulRuns:
    @given(market_strategy())
    @settings(max_examples=40)
    def test_truthful_utility_nonnegative(self, market):
        # Voluntary participation (Theorem 4.1 premise): an honest agent
        # never ends an engagement worse off than staying out.
        w, z, kind = market
        out = run_protocol(kind, w=w, z=z)
        assert out.completed
        assert all(u >= -TOL for u in out.utilities.values())

    @given(market_strategy())
    @settings(max_examples=40)
    def test_mass_conserved(self, market):
        w, z, kind = market
        out = run_protocol(kind, w=w, z=z)
        assert sum(out.alpha.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(a > 0.0 for a in out.alpha.values())

    @given(market_strategy())
    @settings(max_examples=40)
    def test_ledger_conserved(self, market):
        w, z, kind = market
        assert_ledger_conserved(run_protocol(kind, w=w, z=z))

    @given(market_strategy())
    @settings(max_examples=25)
    def test_user_cost_settles_payment_total(self, market):
        w, z, kind = market
        out = run_protocol(kind, w=w, z=z)
        assert out.user_cost == pytest.approx(sum(out.payments.values()))


class TestStrategyproofness:
    @given(market_strategy(min_m=2, max_m=4),
           st.integers(min_value=0, max_value=3),
           st.floats(min_value=0.7, max_value=1.5))
    @settings(max_examples=25)
    def test_misreporting_never_beats_truth(self, market, which, factor):
        # The DLS-BL payment rule makes truthful bidding dominant; a
        # unilateral misreport (in either direction) cannot raise the
        # liar's utility above its truthful counterfactual.
        from repro.agents.behaviors import misreport

        w, z, kind = market
        i = which % len(w)
        honest = run_protocol(kind, w=w, z=z)
        lied = run_protocol(kind, {i: misreport(factor)}, w=w, z=z)
        name = f"P{i + 1}"
        assert lied.utilities[name] <= honest.utilities[name] + TOL
