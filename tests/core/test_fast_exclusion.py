"""The O(m) exclusion fast path must match the naive reference exactly."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.fast_exclusion import all_excluded_optimal_makespans
from repro.core.payments import bonus, bonus_vector, excluded_optimal_makespan
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import network_strategy


class TestAgainstNaiveReference:
    @given(network_strategy(min_m=2, max_m=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_per_index_solves(self, net):
        fast = all_excluded_optimal_makespans(net)
        naive = np.array([excluded_optimal_makespan(net, i)
                          for i in range(net.m)])
        assert np.allclose(fast, naive, rtol=1e-12, atol=1e-12)

    @given(network_strategy(min_m=2, max_m=10))
    @settings(max_examples=100, deadline=None)
    def test_bonus_vector_matches_scalar_bonus(self, net):
        w_exec = np.asarray(net.w) * 1.3
        fast = bonus_vector(net, w_exec)
        alpha = allocate(net)
        naive = np.array([bonus(net, i, float(w_exec[i]), alpha)
                          for i in range(net.m)])
        assert np.allclose(fast, naive, rtol=1e-10, atol=1e-12)

    def test_requires_two_workers(self):
        with pytest.raises(ValueError):
            all_excluded_optimal_makespans(
                BusNetwork((2.0,), 0.5, NetworkKind.CP))


class TestSpecialCases:
    def test_nfe_lone_originator(self):
        # Removing the only other worker leaves the NFE originator
        # computing its own data with no communication at all.
        net = BusNetwork((9.59, 1.91), 2.92, NetworkKind.NCP_NFE)
        fast = all_excluded_optimal_makespans(net)
        assert fast[0] == pytest.approx(1.91)

    def test_fe_lone_originator(self):
        net = BusNetwork((3.0, 4.0), 1.0, NetworkKind.NCP_FE)
        fast = all_excluded_optimal_makespans(net)
        # removing P2 leaves the FE originator alone: T = w_1
        assert fast[1] == pytest.approx(3.0)
        # removing the originator leaves a CP distributor: T = z + w_2
        assert fast[0] == pytest.approx(1.0 + 4.0)

    def test_nfe_penultimate_splice(self):
        # Removing P_{m-1} couples P_{m-2} directly to the z-free
        # originator link.
        net = BusNetwork((2.0, 3.0, 4.0, 5.0), 0.5, NetworkKind.NCP_NFE)
        fast = all_excluded_optimal_makespans(net)
        assert fast[2] == pytest.approx(excluded_optimal_makespan(net, 2))


class TestScale:
    def test_large_m_fast_and_finite(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 10, 4096)
        net = BusNetwork(tuple(w), 0.05, NetworkKind.NCP_FE)
        out = all_excluded_optimal_makespans(net)
        assert out.shape == (4096,)
        assert np.all(np.isfinite(out))
        # Exclusions can never beat the full optimum.
        from repro.dlt.timing import optimal_makespan

        assert np.all(out >= optimal_makespan(net) - 1e-10)
