"""Unit tests for the referee committee's quorum state machine."""

import pytest

from repro.core.fines import FinePolicy
from repro.core.quorum import (
    BYZANTINE_STRATEGIES,
    EQUIVOCATE,
    FINE_STEAL,
    HONEST,
    SILENT,
    CommitteeConfig,
    QuorumError,
    RefereeCommittee,
    tolerated_faults,
)
from repro.core.referee import Referee, verdict_to_dict
from repro.crypto.pki import PKI

PARTICIPANTS = ["P1", "P2", "P3"]
FINE = 10.0


def signed_bid(pki_keys, name, bid):
    return pki_keys[name].sign({"processor": name, "bid": bid})


@pytest.fixture
def world():
    pki = PKI(seed=5)
    keys = {n: pki.register(n) for n in PARTICIPANTS}
    return pki, keys


def equivocation_case(committee, keys):
    a = signed_bid(keys, "P2", 2.0)
    b = signed_bid(keys, "P2", 3.0)
    return committee.new_case(
        "judge_equivocation", claimant="P1", accused="P2", evidence=(a, b),
        participants=PARTICIPANTS, fine=FINE)


class TestToleratedFaults:
    @pytest.mark.parametrize("size,f", [
        (1, 0), (2, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (13, 4)])
    def test_n_ge_3f_plus_1(self, size, f):
        assert tolerated_faults(size) == f
        assert size >= 3 * f + 1


class TestCommitteeConfig:
    def test_defaults(self):
        cfg = CommitteeConfig()
        assert (cfg.size, cfg.f, cfg.quorum) == (4, 1, 3)
        assert cfg.rounds_budget == 12
        assert cfg.member_names() == (
            "referee-1", "referee-2", "referee-3", "referee-4")

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="positive"):
            CommitteeConfig(size=0)

    def test_rejects_untolerable_faults(self):
        with pytest.raises(ValueError, match="at most"):
            CommitteeConfig(size=4, faults=2)

    def test_rejects_out_of_range_byzantine(self):
        with pytest.raises(ValueError, match="out of range"):
            CommitteeConfig(size=4, byzantine=((4, SILENT),))

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown referee strategy"):
            CommitteeConfig(size=4, byzantine=((0, "bribable"),))

    def test_rejects_duplicate_seats(self):
        with pytest.raises(ValueError, match="duplicate"):
            CommitteeConfig(size=4, byzantine=((0, SILENT), (0, EQUIVOCATE)))

    def test_strategy_lookup(self):
        cfg = CommitteeConfig(size=4, byzantine=((2, FINE_STEAL),))
        assert cfg.strategy_for(2) == FINE_STEAL
        assert cfg.strategy_for(0) == HONEST


class TestHonestQuorum:
    def test_round_zero_decides(self, world):
        pki, keys = world
        committee = RefereeCommittee(pki, FinePolicy())
        decision = committee.decide(equivocation_case(committee, keys))
        assert decision.rounds == 1
        assert decision.verdict.fined_names == ("P2",)
        assert decision.certificate.round_index == 0
        assert len(set(decision.certificate.voters)) >= 3

    def test_verdict_matches_single_referee(self, world):
        pki, keys = world
        committee = RefereeCommittee(pki, FinePolicy())
        lone = Referee(PKI(seed=5), FinePolicy())
        # The lone referee needs the same processor keys registered.
        lone_pki_keys = {n: lone.pki.register(n) for n in PARTICIPANTS}
        a = signed_bid(lone_pki_keys, "P2", 2.0)
        b = signed_bid(lone_pki_keys, "P2", 3.0)
        expected = lone.judge_equivocation("P1", "P2", (a, b),
                                           PARTICIPANTS, FINE)
        decision = committee.decide(equivocation_case(committee, keys))
        assert verdict_to_dict(decision.verdict) == verdict_to_dict(expected)

    def test_certificate_retrievable_by_verdict_identity(self, world):
        pki, keys = world
        committee = RefereeCommittee(pki, FinePolicy())
        decision = committee.decide(equivocation_case(committee, keys))
        assert committee.certificate_for(decision.verdict) \
            is decision.certificate
        other = equivocation_case(committee, keys)
        fresh = committee.decide(other)
        assert committee.certificate_for(fresh.verdict) is not \
            decision.certificate

    def test_facade_matches_decide(self, world):
        pki, keys = world
        committee = RefereeCommittee(pki, FinePolicy())
        a = signed_bid(keys, "P2", 2.0)
        b = signed_bid(keys, "P2", 3.0)
        verdict = committee.judge_equivocation("P1", "P2", (a, b),
                                               PARTICIPANTS, FINE)
        assert verdict.fined_names == ("P2",)
        assert committee.certificate_for(verdict) is not None


class TestByzantineMembers:
    @pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
    def test_one_byzantine_leader_is_outvoted_or_skipped(self, world,
                                                         strategy):
        pki, keys = world
        committee = RefereeCommittee(
            pki, FinePolicy(),
            config=CommitteeConfig(size=4, byzantine=((0, strategy),)))
        decision = committee.decide(equivocation_case(committee, keys))
        assert decision.verdict.fined_names == ("P2",)
        # An equivocating round-0 leader shows the true verdict to its
        # even-indexed peers, which can be enough for quorum in round 0;
        # silent and fine-stealing leaders always burn round 0.
        if strategy != EQUIVOCATE:
            assert decision.rounds == 2

    def test_fine_stealer_never_certifies_theft(self, world):
        pki, keys = world
        committee = RefereeCommittee(
            pki, FinePolicy(),
            config=CommitteeConfig(size=4, byzantine=((0, FINE_STEAL),)))
        decision = committee.decide(equivocation_case(committee, keys))
        assert "referee-1" not in decision.verdict.rewards

    def test_beyond_tolerance_raises(self, world):
        pki, keys = world
        committee = RefereeCommittee(
            pki, FinePolicy(),
            config=CommitteeConfig(size=4, byzantine=tuple(
                (i, SILENT) for i in range(4))))
        with pytest.raises(QuorumError, match="no quorum"):
            committee.decide(equivocation_case(committee, keys))

    def test_unreachable_members_tolerated_up_to_f(self, world):
        pki, keys = world
        committee = RefereeCommittee(pki, FinePolicy(),
                                     config=CommitteeConfig(size=4))
        decision = committee.decide(
            equivocation_case(committee, keys),
            unreachable=frozenset({"referee-1"}))
        assert decision.verdict.fined_names == ("P2",)
        assert decision.rounds == 2  # round 0's leader was unreachable

    def test_set_strategy_rejects_unknowns(self, world):
        pki, _ = world
        committee = RefereeCommittee(pki, FinePolicy())
        with pytest.raises(ValueError, match="unknown referee strategy"):
            committee.set_strategy("referee-1", "lazy")
        with pytest.raises(ValueError, match="no committee member"):
            committee.set_strategy("referee-9", SILENT)


class TestMemberKeysInPki:
    def test_every_member_registered(self, world):
        pki, _ = world
        committee = RefereeCommittee(pki, FinePolicy())
        for member in committee.members:
            signed = member.key.sign({"hello": member.name})
            assert pki.verify(signed)

    def test_processor_keys_undisturbed_by_roster(self):
        # Registering referee names must not change processor keys:
        # per-name deterministic minting keeps f=0 runs digest-identical.
        a = PKI(seed=9)
        a_key = a.register("P1")
        b = PKI(seed=9)
        RefereeCommittee(b, FinePolicy())
        b_key = b.register("P1")
        payload = {"processor": "P1", "bid": 2.0}
        assert a_key.sign(payload).signature == b_key.sign(payload).signature
