"""MarketSimulator end-to-end behavior on short seeded runs.

The golden 200-round stream digest lives in tests/api/golden; these
tests cover the *dynamics*: determinism across construction, churn and
the leave→crash path, deviant extinction under reputation pressure,
verify-mode digest invariance, and the windowed series contract that
repro.analysis.timeseries consumes.
"""

import pytest

from repro.api import MarketRequest
from repro.market import MarketError, MarketSimulator, run_market


def market(**overrides) -> MarketRequest:
    base = dict(rounds=30, seed=7, processors=6, cohort=3,
                num_blocks=12, arrival_rate=2.0, contention_window=0.3,
                max_contention=3, window=10)
    base.update(overrides)
    return MarketRequest(**base)


class TestDeterminism:
    def test_identical_requests_reproduce_the_stream_digest(self):
        a = run_market(market())
        b = run_market(market())
        assert a.digest() == b.digest()
        assert a.summary == b.summary
        assert a.series == b.series
        assert a.reputations == b.reputations

    def test_every_request_field_reaches_the_derivation(self):
        base = run_market(market()).digest()
        for override in (dict(seed=8), dict(arrival_rate=2.5),
                         dict(contention_window=0.1), dict(z=0.5),
                         dict(policy="sjf"), dict(w_high=7.0)):
            assert run_market(market(**override)).digest() != base, (
                f"{override} did not change the round stream")

    def test_verify_mode_does_not_change_the_stream(self):
        # --verify adds checking, never behavior: same digest, and the
        # verified-round count covers every round.
        plain = run_market(market(rounds=15))
        checked = run_market(market(rounds=15), verify=True)
        assert checked.digest() == plain.digest()
        assert checked.summary["verified_rounds"] == 15
        assert "verified_rounds" not in plain.summary

    def test_contention_actually_happens(self):
        result = run_market(market())
        assert result.summary["contended_rounds"] > 0
        assert result.summary["engagements"] > result.rounds


class TestChurn:
    def test_join_and_leave_processes_move_the_population(self):
        result = run_market(market(rounds=60, join_rate=0.3,
                                   leave_rate=0.2))
        assert result.summary["joins"] > 0
        assert result.summary["leaves"] > 0
        assert len(result.reputations) \
            == 6 + result.summary["joins"]
        assert result.summary["population"] \
            == 6 + result.summary["joins"] - result.summary["leaves"]

    def test_population_never_drops_below_a_fillable_cohort(self):
        result = run_market(market(rounds=80, leave_rate=0.9, cohort=3),
                            verify=True)
        assert result.summary["population"] >= 3

    def test_hired_leaver_becomes_a_processing_crash(self):
        # With aggressive churn some departures must land on a hired
        # processor mid-round and take the engine's crash/survivor
        # re-allocation path — visible as crashes in the summary, with
        # the ledger still conserved every round (verify would raise).
        result = run_market(market(rounds=80, join_rate=0.4,
                                   leave_rate=0.4, seed=3),
                            verify=True)
        assert result.summary["crashes"] > 0
        assert result.summary["max_ledger_error"] < 1e-6


class TestDeviantExtinction:
    def test_resident_deviant_goes_extinct_under_reputation_pressure(self):
        result = run_market(market(
            rounds=60, deviants=((0, "multiple-bids"),),
            reputation_decay=0.6, admission_floor=0.3))
        assert result.summary["deviants"] == 1
        assert result.summary["deviants_extinct"] is True
        assert result.summary["fines"] > 0
        # The fined identity is pinned: founding index 0 is M1.
        assert result.reputations["M1"] < 0.3
        honest = [rep for pid, rep in result.reputations.items()
                  if pid != "M1"]
        assert min(honest) > result.reputations["M1"]

    def test_extinct_deviant_stops_being_hired_and_fined(self):
        # Once below the floor the deviant stops winning admission, so
        # fines concentrate early: the last windows are quieter than
        # the first.
        result = run_market(market(
            rounds=100, deviants=((0, "multiple-bids"),),
            reputation_decay=0.6, admission_floor=0.3, window=20))
        fines = result.series["fines"]
        assert sum(fines[:2]) > sum(fines[-2:])
        alive = result.series["deviants_alive"]
        assert alive[0] >= alive[-1] == 0


class TestSeriesContract:
    SERIES = ("welfare", "fines", "crashes", "population",
              "deviants_alive", "deviant_reputation",
              "honest_reputation", "price")

    def test_windowed_series_shape(self):
        result = run_market(market(rounds=30, window=10))
        assert set(result.series) == set(self.SERIES)
        for name in self.SERIES:
            assert len(result.series[name]) == 3, name

    def test_partial_final_window_is_emitted(self):
        result = run_market(market(rounds=25, window=10))
        assert len(result.series["welfare"]) == 3

    def test_summary_totals_match_the_series(self):
        result = run_market(market(rounds=30, window=10,
                                   deviants=((1, "short-allocation"),)))
        assert sum(result.series["fines"]) == result.summary["fines"]
        assert sum(result.series["crashes"]) == result.summary["crashes"]
        assert result.series["population"][-1] \
            == result.summary["population"]


class TestInvariantEnforcement:
    def test_ledger_violation_raises_mid_run(self, monkeypatch):
        from repro.market import history as history_mod

        original = history_mod.MarketHistory.settle

        def corrupted(self, round_index, hired_pids, record):
            settled = original(self, round_index, hired_pids, record)
            settled["ledger_error"] = 1.0
            return settled

        monkeypatch.setattr(history_mod.MarketHistory, "settle",
                            corrupted)
        with pytest.raises(MarketError, match="ledger not conserved"):
            run_market(market(rounds=5))

    def test_verify_catches_a_nondeterministic_settlement(self,
                                                          monkeypatch):
        import repro.market.simulator as sim_mod

        real_execute = sim_mod.execute
        calls = {"n": 0}

        class Tampered:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def digest(self):
                return "bogus"

        def flaky(request, **kwargs):
            result = real_execute(request, **kwargs)
            calls["n"] += 1
            if calls["n"] == 2:  # the verification re-execution
                return Tampered(result)
            return result

        monkeypatch.setattr(sim_mod, "execute", flaky)
        with pytest.raises(MarketError, match="not reproducible"):
            run_market(market(rounds=5, max_contention=1), verify=True)

    def test_simulator_rounds_stop_exactly_at_the_target(self):
        sim = MarketSimulator(market(rounds=12))
        result = sim.run()
        assert result.rounds == 12
        assert sim._done
