"""MarketHistory unit behavior: reputation, admission, settlement.

These tests exercise the ledger in isolation with hand-built protocol
records — no engine, no simulator — so each market rule (geometric
reputation decay, floor-gated admission, the P{k} → pid verdict
mapping, price EMAs) is pinned by arithmetic the reader can check by
hand.
"""

import random

import pytest

from repro.market import MarketHistory, weighted_sample


def record(*, fines=(), balances=None, utilities=None, alpha=None,
           payments=None, crashed=()):
    """A minimal protocol-result dict in the io.py wire shape."""
    return {
        "verdicts": [{"fines": [
            {"who": who, "amount": amount, "offence": "test"}
            for who, amount in fines]}] if fines else [],
        "balances": balances or {},
        "utilities": utilities or {},
        "alpha": alpha or {},
        "payments": payments or {},
        "crashed": list(crashed),
    }


def seeded_history(n=4, *, decay=0.5, floor=0.25):
    history = MarketHistory(decay=decay, floor=floor)
    for i in range(n):
        history.add(2.0 + i)
    return history


class TestReputation:
    def test_fined_reputation_decays_geometrically(self):
        # decay=0.5 and a fine every engagement: 1 -> .5 -> .25 -> .125
        history = seeded_history(2, decay=0.5)
        for expected in (0.5, 0.25, 0.125):
            history.settle(1, ["M1", "M2"],
                           record(fines=(("P1", 3.0),)))
            assert history.members["M1"].reputation \
                == pytest.approx(expected)
        # The honest cohort-mate never moves off 1.0.
        assert history.members["M2"].reputation == 1.0
        assert history.members["M1"].fines == 3
        assert history.total_fines == 3
        assert history.fine_total == pytest.approx(9.0)

    def test_reputation_recovers_toward_one_after_a_clean_round(self):
        history = seeded_history(2, decay=0.5)
        history.settle(1, ["M1", "M2"], record(fines=(("P1", 1.0),)))
        history.settle(2, ["M1", "M2"], record())
        assert history.members["M1"].reputation == pytest.approx(0.75)

    def test_extinction_crosses_the_admission_floor(self):
        history = seeded_history(3, decay=0.5, floor=0.2)
        for round_index in range(3):
            history.settle(round_index, ["M1", "M2"],
                           record(fines=(("P1", 1.0),)))
        assert history.members["M1"].reputation < 0.2
        assert [m.pid for m in history.eligible()] == ["M2", "M3"]


class TestSettlementMapping:
    def test_positions_map_to_market_identities(self):
        # Engagement position k is the record's P{k+1}: the fine on P2
        # must land on whoever was hired second, not on "M2".
        history = seeded_history(3, decay=0.5)
        history.settle(1, ["M3", "M1"], record(fines=(("P2", 2.0),)))
        assert history.members["M1"].fines == 1
        assert history.members["M3"].fines == 0

    def test_earnings_ledger_error_and_crashes_fold_in(self):
        history = seeded_history(2)
        settled = history.settle(1, ["M2", "M1"], record(
            balances={"P1": 4.0, "P2": -3.5},
            utilities={"P1": 1.5, "P2": 0.25},
            crashed=("P2",)))
        assert settled["welfare"] == pytest.approx(1.75)
        assert settled["ledger_error"] == pytest.approx(0.5)
        assert settled["crashed"] == ["M1"]
        assert history.members["M2"].earned == pytest.approx(4.0)
        assert history.members["M1"].earned == pytest.approx(-3.5)
        assert history.max_ledger_error == pytest.approx(0.5)
        assert history.crashes == 1

    def test_price_ema_tracks_realized_unit_price(self):
        # decay=0.5, w=2.0 seed, one round at unit price 6/2=3:
        # ema = 0.5*2.0 + 0.5*3.0 = 2.5.  Zero-allocation members
        # (alpha ~ 0) keep their EMA untouched.
        history = seeded_history(2, decay=0.5)
        history.settle(1, ["M1", "M2"], record(
            alpha={"P1": 2.0, "P2": 0.0},
            payments={"P1": 6.0, "P2": 1.0}))
        assert history.members["M1"].price_ema == pytest.approx(2.5)
        assert history.members["M2"].price_ema == pytest.approx(3.0)


class TestAdmission:
    def test_weighted_sample_is_seed_deterministic(self):
        items = list("abcdef")
        weights = [1.0, 5.0, 0.5, 2.0, 0.0, 3.0]
        draws = [weighted_sample(random.Random("market-test"), items,
                                 weights, 3) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]
        assert len(set(draws[0])) == 3  # without replacement

    def test_weighted_sample_all_zero_weights_is_uniform(self):
        items = list("abc")
        drawn = weighted_sample(random.Random(1), items, [0.0] * 3, 3)
        assert sorted(drawn) == items

    def test_pool_excludes_already_hired_members(self):
        history = seeded_history(4)
        pool = history.admission_pool(2, exclude=frozenset({"M1", "M3"}))
        assert [m.pid for m in pool] == ["M2", "M4"]

    def test_floor_relaxes_before_an_engagement_goes_unfilled(self):
        # Only one member above the floor but cohort=2: the best of the
        # disgraced backfills rather than leaving the slot empty.
        history = seeded_history(3, decay=0.5, floor=0.9)
        history.settle(1, ["M1", "M2"], record(fines=(("P1", 1.0),
                                                      ("P2", 1.0),)))
        history.settle(2, ["M1"], record(fines=(("P1", 1.0),)))
        pool = history.admission_pool(2)
        assert [m.pid for m in pool] == ["M2", "M3"]  # M2 = best fallen

    def test_exclusion_relaxes_only_when_population_is_short(self):
        history = seeded_history(2)
        pool = history.admission_pool(2, exclude=frozenset({"M1", "M2"}))
        assert [m.pid for m in pool] == ["M1", "M2"]

    def test_departed_members_are_never_hired(self):
        history = seeded_history(3)
        history.mark_left("M2", round_index=5)
        pool = history.admission_pool(3)
        assert [m.pid for m in pool] == ["M1", "M3"]
        assert history.leaves == 1
        history.mark_left("M2", round_index=6)  # idempotent
        assert history.leaves == 1
        assert history.members["M2"].left_round == 5

    def test_cheap_reputable_processors_win_more_often(self):
        history = MarketHistory(decay=0.8, floor=0.2)
        history.add(1.5)   # cheap
        history.add(6.0)   # expensive
        rng = random.Random("bias")
        first = [history.hire(rng, 1)[0].pid for _ in range(200)]
        assert first.count("M1") > 150
