"""Topology invariance: direct == daemon == fleet for market runs.

The MarketResult's identity is its stream digest, so "the service layer
cannot change an answer" reduces to one equality over three transports
— the same contract the loadgen soaks pin for engagement streams, now
extended to the long-horizon market kind.  Cache semantics ride along:
a market run is expensive and deterministic, so the daemon must replay
repeats from its result cache with the ``cached`` flag raised.
"""

import pytest

from repro.api import MarketRequest, execute, result_from_dict
from repro.service import ServiceClient
from tests.service.test_fleet import EmbeddedFleet

REQUEST = MarketRequest(rounds=40, seed=11, processors=6, cohort=3,
                        num_blocks=12, arrival_rate=2.0,
                        contention_window=0.3, max_contention=3,
                        join_rate=0.1, leave_rate=0.05,
                        deviants=((0, "multiple-bids"),), window=10)


@pytest.fixture(scope="module")
def direct():
    return execute(REQUEST)


class TestServedMarket:
    def test_daemon_serves_the_direct_digest_and_caches_repeats(
            self, direct):
        with ServiceClient(tcp="127.0.0.1:0", workers=1) as client:
            served = client.request(REQUEST)
            assert served.digest() == direct.digest()
            assert served.summary == direct.summary
            assert not served.cached
            replay = client.request(REQUEST)
            assert replay.cached
            assert replay.digest() == direct.digest()
            assert replay.series == direct.series

    def test_fleet_of_two_serves_the_direct_digest(self, direct):
        # A second, different market request shards the pair across the
        # fleet; both must come back digest-identical to in-process
        # execution wherever they land.
        sibling = MarketRequest(rounds=40, seed=12, processors=6,
                                cohort=3, num_blocks=12,
                                arrival_rate=2.0, contention_window=0.3,
                                max_contention=3, join_rate=0.1,
                                leave_rate=0.05,
                                deviants=((0, "multiple-bids"),),
                                window=10)
        with EmbeddedFleet(2) as fleet:
            dispatcher = fleet.dispatcher()
            for request, reference in ((REQUEST, direct),
                                       (sibling, None)):
                response = dispatcher.submit(request)
                assert response["ok"], response
                result = result_from_dict(response["result"])
                expected = (reference.digest() if reference
                            else execute(request).digest())
                assert result.digest() == expected
            assert dispatcher.counters.requests == 2

    def test_wire_round_trip_preserves_series_and_reputations(
            self, direct):
        # The differential holds at full fidelity, not just the digest:
        # the JSON-serialized result reconstructs every series point
        # and reputation score exactly.
        clone = result_from_dict(direct.to_dict())
        assert clone == direct
        assert clone.series == direct.series
        assert clone.reputations == direct.reputations
