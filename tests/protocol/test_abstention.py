"""Non-participation: 'If P_i does not wish to participate, it does not
broadcast a bid and it receives a utility of 0' (Section 4, Bidding)."""

import pytest

from repro.agents.behaviors import abstaining, truthful
from repro.core.dls_bl import DLSBL
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W4 as W, PROTO_Z as Z


class TestAbstention:
    def test_abstainer_gets_zero_everything(self, ncp_kind):
        # A non-originator abstains; the rest proceed without it.
        idx = 1
        out = DLSBLNCP(W, ncp_kind, Z, behaviors={idx: abstaining()}).run()
        assert out.completed
        assert "P2" not in out.participants
        assert out.utilities["P2"] == 0.0
        assert out.payments["P2"] == 0.0
        assert out.alpha["P2"] == 0.0

    def test_remaining_participants_reschedule(self, ncp_kind):
        out = DLSBLNCP(W, ncp_kind, Z, behaviors={1: abstaining()}).run()
        active = [n for n in out.order if n != "P2"]
        assert list(out.participants) == active
        assert sum(out.alpha[n] for n in active) == pytest.approx(1.0)
        # The reduced engagement equals DLS-BL on the reduced instance.
        reduced_w = [w for i, w in enumerate(W) if i != 1]
        central = DLSBL(ncp_kind, Z).truthful_run(reduced_w)
        for i, name in enumerate(active):
            assert out.payments[name] == pytest.approx(central.payments[i])

    def test_abstention_is_not_an_offence(self, ncp_kind):
        out = DLSBLNCP(W, ncp_kind, Z, behaviors={2: abstaining()}).run()
        assert out.fined == {}
        assert out.verdicts == ()

    def test_originator_abstaining_aborts_engagement(self, ncp_kind):
        lo = 0 if ncp_kind is NetworkKind.NCP_FE else len(W) - 1
        out = DLSBLNCP(W, ncp_kind, Z, behaviors={lo: abstaining()}).run()
        assert not out.completed
        assert out.terminal_phase is Phase.BIDDING
        assert out.participants != tuple(out.order)
        assert all(u == 0.0 for u in out.utilities.values())
        assert out.fined == {}

    def test_all_but_one_abstain_aborts(self, ncp_kind):
        behaviors = {i: abstaining() for i in range(1, len(W))}
        if ncp_kind is NetworkKind.NCP_NFE:
            behaviors = {i: abstaining() for i in range(len(W) - 1)}
        out = DLSBLNCP(W, ncp_kind, Z, behaviors=behaviors).run()
        assert not out.completed
        assert all(u == 0.0 for u in out.utilities.values())

    def test_voluntary_participation_makes_abstention_dominated(self, ncp_kind):
        # Truthful participation yields utility >= 0 = abstention:
        # voluntary participation is why rational agents join at all.
        joined = DLSBLNCP(W, ncp_kind, Z).run()
        out = DLSBLNCP(W, ncp_kind, Z, behaviors={1: abstaining()}).run()
        assert joined.utilities["P2"] >= out.utilities["P2"] - 1e-12

    def test_detection_still_works_with_abstainers(self, ncp_kind):
        from repro.agents.behaviors import AgentBehavior, Deviation

        behaviors = {
            1: abstaining(),
            2: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}),
        }
        out = DLSBLNCP(W, ncp_kind, Z, behaviors=behaviors).run()
        assert list(out.fined) == ["P3"]
        # The abstainer is not among the reward beneficiaries.
        assert out.balances["P2"] == 0.0
