"""NCP-NFE-specific protocol behaviour.

The no-front-end system has asymmetries the generic tests can gloss
over: the originator is the *last* processor, it never computes before
its sends finish, and terminated-run compensation must reflect that it
had not commenced work.
"""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W4 as W, PROTO_Z as Z


class TestOriginatorRole:
    def test_originator_is_last(self):
        mech = DLSBLNCP(W, NetworkKind.NCP_NFE, Z)
        assert mech.engine.originator.name == "P4"

    def test_originator_ships_everyone_else(self):
        from repro.network.messages import MessageKind

        mech = DLSBLNCP(W, NetworkKind.NCP_NFE, Z)
        out = mech.run()
        loads = [m for m in mech.engine.bus.log
                 if m.kind is MessageKind.LOAD]
        assert len(loads) == len(W) - 1
        assert all(m.sender == "P4" for m in loads)
        assert {m.recipients[0] for m in loads} == {"P1", "P2", "P3"}


class TestTerminationCompensation:
    def test_nfe_originator_never_compensated_for_uncommenced_work(self):
        # Dispute by P2: in NFE the originator (P4) has NOT begun
        # computing (no front end), so the verdict must not compensate
        # it; only P1 (received before P2) has commenced.
        out = DLSBLNCP(W, NetworkKind.NCP_NFE, Z, behaviors={
            3: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P2",
                                               "delta_blocks": 2})}).run()
        assert out.terminal_phase is Phase.ALLOCATING_LOAD
        v = out.verdicts[0]
        assert "P4" not in v.compensated
        assert "P1" in v.compensated
        assert out.costs["P4"] == 0.0
        assert out.costs["P1"] > 0

    def test_fe_originator_always_compensated_on_dispute(self):
        # Contrast: the FE originator computes from t = 0, so it is
        # compensated whenever a later dispute terminates the run —
        # unless it is itself the fined party.
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            2: AgentBehavior(deviations={Deviation.FALSE_ALLOCATION_CLAIM})
        }).run()
        v = out.verdicts[0]
        assert list(out.fined) == ["P3"]
        assert "P1" in v.compensated  # FE originator had commenced


class TestDisputeOrdering:
    def test_earliest_recipient_claims_first(self):
        # Two victims short-shipped: the first in allocation order files
        # the claim (its name appears in the CLAIM message).
        from repro.network.messages import MessageKind

        mech = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P2",
                                               "delta_blocks": 2})})
        # also short P3 by manipulating the plan through a second victim
        # is not expressible via one deviation; instead verify the
        # single-victim case files from the victim itself.
        out = mech.run()
        claims = [m for m in mech.engine.bus.log
                  if m.kind is MessageKind.CLAIM]
        assert claims
        assert claims[0].sender == "P2"

    def test_nfe_dispute_claimant_index_semantics(self):
        # NFE: the originator P4 short-ships P3 (the last recipient);
        # P1, P2 commenced before P3's dispute, P4 did not.
        out = DLSBLNCP(W, NetworkKind.NCP_NFE, Z, behaviors={
            3: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P3",
                                               "delta_blocks": 2})}).run()
        assert set(out.verdicts[0].compensated) == {"P1", "P2"}
