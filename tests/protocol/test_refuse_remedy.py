"""The REFUSE_REMEDY deviation: stonewalling the referee's mediation."""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W4 as W, run_protocol


def run(kind=NetworkKind.NCP_FE, extra=frozenset()):
    lo = 0 if kind is NetworkKind.NCP_FE else len(W) - 1
    behaviors = {lo: AgentBehavior(
        deviations=frozenset({Deviation.SHORT_ALLOCATION}) | extra,
        deviation_params={"victim": "P2", "delta_blocks": 3})}
    return run_protocol(kind, behaviors), f"P{lo + 1}"


class TestRefuseRemedy:
    def test_cooperative_originator_fined_for_under_assignment(self, ncp_kind):
        out, lo_name = run(ncp_kind)
        assert out.terminal_phase is Phase.ALLOCATING_LOAD
        assert out.verdicts[0].fines[0].offence == "under-assignment"
        assert list(out.fined) == [lo_name]

    def test_stonewalling_originator_fined_for_refused_remedy(self, ncp_kind):
        out, lo_name = run(ncp_kind, extra=frozenset({Deviation.REFUSE_REMEDY}))
        assert out.terminal_phase is Phase.ALLOCATING_LOAD
        assert out.verdicts[0].fines[0].offence == "refused-remedy"
        assert list(out.fined) == [lo_name]

    def test_same_fine_either_way(self, ncp_kind):
        # The label differs; the deterrence does not.
        a, lo = run(ncp_kind)
        b, _ = run(ncp_kind, extra=frozenset({Deviation.REFUSE_REMEDY}))
        assert a.fined[lo] == pytest.approx(b.fined[lo])
        assert a.utilities[lo] == pytest.approx(b.utilities[lo])
