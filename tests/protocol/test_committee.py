"""Engine integration for the referee committee.

Pins the tentpole guarantees:

* **f = 0 equivalence** — an all-honest committee settles byte-identically
  to the single trusted referee on honest, deviant and faulty runs;
* **Byzantine tolerance** — N = 4 with one Byzantine member (every
  strategy) produces the same verdicts as the trusted referee and the
  ledger still conserves;
* **certificate enforcement** — a verdict without a verifying quorum
  certificate can never move money.
"""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP, EngineConfig
from repro.core.quorum import (
    BYZANTINE_STRATEGIES,
    CommitteeConfig,
    QuorumError,
)
from repro.core.referee import verdict_to_dict
from repro.dlt.platform import NetworkKind
from repro.io import protocol_result_to_dict
from repro.network.faults import (
    CrashFault,
    FaultPlan,
    MessageFault,
    RefereeFault,
)
from repro.network.messages import MessageKind
from repro.protocol.phases import Phase

W = [2.0, 3.0, 5.0, 4.0]
Z = 0.4
KIND = NetworkKind.NCP_FE

DEVIANT = {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}
WRONG_PAYER = {2: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})}


def run(committee=None, *, behaviors=None, fault_plan=None,
        bidding_mode="atomic", seed=17):
    return DLSBLNCP(W, KIND, Z, config=EngineConfig(
        behaviors=behaviors, num_blocks=60, pki_seed=seed,
        fault_plan=fault_plan, bidding_mode=bidding_mode,
        committee=committee)).run()


def settlement(result) -> dict:
    """The archival dump minus telemetry (traffic, spans, certificates)."""
    doc = protocol_result_to_dict(result)
    for key in ("traffic", "spans", "certificates"):
        doc.pop(key, None)
    return doc


SCENARIOS = {
    "honest": {},
    "deviant": {"behaviors": DEVIANT},
    "wrong-payments": {"behaviors": WRONG_PAYER},
    "crash": {"fault_plan": FaultPlan(crashes=(
        CrashFault("P2", phase=Phase.PROCESSING_LOAD, progress=0.5),))},
    "droppy-commit": {"bidding_mode": "commit",
                      "fault_plan": FaultPlan(seed=11, messages=(
                          MessageFault(kind=MessageKind.BID,
                                       probability=0.2),))},
}


class TestHonestCommitteeEquivalence:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_settlement_identical_to_single_referee(self, scenario):
        kwargs = SCENARIOS[scenario]
        baseline = run(None, **kwargs)
        quorum = run(CommitteeConfig(size=4), **kwargs)
        assert settlement(quorum) == settlement(baseline)

    def test_every_verdict_carries_a_certificate(self):
        result = run(CommitteeConfig(size=4), behaviors=DEVIANT)
        assert result.verdicts
        assert len(result.certificates) >= len(result.verdicts)

    def test_single_member_committee_still_certifies(self):
        result = run(CommitteeConfig(size=1), behaviors=DEVIANT)
        assert settlement(result) == settlement(run(None, behaviors=DEVIANT))
        assert result.certificates


class TestByzantineTolerance:
    @pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_one_byzantine_member_changes_nothing(self, scenario, strategy):
        kwargs = SCENARIOS[scenario]
        baseline = run(None, **kwargs)
        quorum = run(CommitteeConfig(size=4, byzantine=((0, strategy),)),
                     **kwargs)
        assert ([verdict_to_dict(v) for v in quorum.verdicts]
                == [verdict_to_dict(v) for v in baseline.verdicts])
        assert quorum.payments == baseline.payments
        assert quorum.balances == baseline.balances

    @pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
    def test_ledger_conserves_under_quorum_redistribution(self, strategy):
        result = run(CommitteeConfig(size=4, byzantine=((0, strategy),)),
                     behaviors=DEVIANT)
        assert result.verdicts, "the deviant must be convicted"
        assert abs(sum(result.balances.values())) < 1e-9
        fined = sum(result.balances[n] for n in result.verdicts[0].fined_names)
        assert fined < 0  # the offender pays...
        workers = set(result.balances) - {"user"}
        assert all(result.balances[n] > 0 for n in workers
                   if n not in result.verdicts[0].fined_names)  # ...others gain

    def test_byzantine_rounds_show_up_in_spans(self):
        result = run(CommitteeConfig(size=4, byzantine=((0, "silent"),)),
                     behaviors=DEVIANT)
        assert sum(s.quorum_rounds for s in result.spans) >= 2

    def test_fault_plan_injects_referee_strategy(self):
        plan = FaultPlan(referees=(
            RefereeFault("referee-1", action="fine-steal"),))
        baseline = run(None, behaviors=DEVIANT)
        quorum = run(CommitteeConfig(size=4), behaviors=DEVIANT,
                     fault_plan=plan)
        assert ([verdict_to_dict(v) for v in quorum.verdicts]
                == [verdict_to_dict(v) for v in baseline.verdicts])

    def test_crashed_member_burns_its_leadership_round(self):
        plan = FaultPlan(referees=(RefereeFault("referee-1",
                                                action="crash"),))
        quorum = run(CommitteeConfig(size=4), behaviors=DEVIANT,
                     fault_plan=plan)
        baseline = run(None, behaviors=DEVIANT)
        assert ([verdict_to_dict(v) for v in quorum.verdicts]
                == [verdict_to_dict(v) for v in baseline.verdicts])
        assert sum(s.quorum_rounds for s in quorum.spans) >= 2


class TestQuorumFailure:
    def test_whole_committee_silent_raises(self):
        committee = CommitteeConfig(
            size=4, byzantine=tuple((i, "silent") for i in range(4)),
            max_rounds=4)
        with pytest.raises(QuorumError, match="no quorum"):
            run(committee, behaviors=DEVIANT)


class TestCertificateEnforcement:
    def test_uncertified_verdict_is_rejected(self):
        from repro.core.fines import FinePolicy
        from repro.core.quorum import RefereeCommittee
        from repro.core.referee import Fine, RefereeVerdict
        from repro.crypto.pki import PKI
        from repro.protocol.context import (
            EngagementContext,
            PhaseDeadlines,
            RetryPolicy,
        )

        pki = PKI(seed=5)
        committee = RefereeCommittee(pki, FinePolicy())
        ctx = EngagementContext(
            agents=[], originator=None, kind=KIND, z=Z, num_blocks=60,
            bidding_mode="atomic", policy=FinePolicy(), pki=pki,
            user_key=pki.register("user"), referee=committee, infra=None,
            bus=None, memo=None, deadlines=PhaseDeadlines(),
            retry=RetryPolicy(), fault_plan=None, order=[],
            adjudicator=committee)
        forged = RefereeVerdict(
            case="forged", fines=(Fine("P1", 99.0, "invented"),),
            rewards={}, compensated={}, terminates=True)
        with pytest.raises(QuorumError, match="certificate"):
            ctx.apply_verdict(forged)

    def test_quorum_traffic_on_the_wire(self):
        result = run(CommitteeConfig(size=4), behaviors=DEVIANT)
        kinds = result.traffic.by_kind
        assert kinds[MessageKind.QUORUM_PROPOSAL] >= 3
        assert kinds[MessageKind.QUORUM_VOTE] >= 2
        assert kinds[MessageKind.QUORUM_CERT] >= 1

    def test_certificates_archived_in_dump(self):
        doc = protocol_result_to_dict(run(CommitteeConfig(size=4),
                                          behaviors=DEVIANT))
        assert doc["certificates"]
        cert = doc["certificates"][0]
        assert cert["format"] == "repro/quorum-cert/v1"
        assert len(cert["votes"]) >= 3

    def test_no_certificates_key_without_committee(self):
        doc = protocol_result_to_dict(run(None, behaviors=DEVIANT))
        assert "certificates" not in doc
