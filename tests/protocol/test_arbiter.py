"""Differential suite for the bus-window arbiter.

The correctness contract of :mod:`repro.protocol.arbiter`: a K=1 FIFO
arbiter run is *the same run* as a solo :class:`ProtocolEngine` — not
merely equivalent, but settlement-digest- and wire-digest-identical —
across the whole behavior space (honest, deviant, faulty, committee).
At K>1, fault-free settlements must be invariant to the granting
policy and equal to each engagement's solo reference, because
settlements are functions of bids, never of the shared clock.
"""

import pytest

from repro.api import (
    MultiEngagementRequest,
    build_mechanism,
    execute,
    run_multi_engagement,
    serial_reference,
    settlement_digest,
)
from repro.api.v1 import EngagementRequest
from repro.dlt.platform import NetworkKind
from repro.io import protocol_result_to_dict
from repro.protocol.arbiter import POLICIES, BusArbiter, EngagementJob
from repro.protocol.trace import wire_digest

W = (2.0, 3.0, 5.0, 4.0)
Z = 0.4

# ~25 scenarios spanning every regime the engine supports: honest
# variations (kind / z / size / fees / transport), each deviation
# offence, injected crash & drop faults, and committee adjudication.
BASELINE = [
    dict(w=W, z=Z),
    dict(w=W, z=0.7),
    dict(w=W, z=Z, kind="ncp-nfe"),
    dict(w=(2.0, 3.0), z=Z),
    dict(w=(6.0, 2.0, 4.0, 3.0, 5.0, 7.0), z=0.3),
    dict(w=W, z=Z, fine_factor=5.0),
    dict(w=W, z=Z, bidding_mode="commit"),
    dict(w=W, z=Z, bidding_mode="naive"),
    dict(w=W, z=Z, num_blocks=60),
    dict(w=W, z=Z, deviants=((1, "multiple-bids"),)),
    dict(w=W, z=Z, deviants=((0, "short-allocation"),)),
    dict(w=W, z=Z, deviants=((0, "over-allocation"),)),
    dict(w=W, z=Z, deviants=((2, "wrong-payments"),)),
    dict(w=W, z=Z, deviants=((3, "contradictory-payments"),)),
    dict(w=W, z=Z, deviants=((1, "manipulated-bid-vector"),)),
    dict(w=W, z=Z, deviants=((2, "false-allocation-claim"),)),
    dict(w=W, z=Z, bidding_mode="commit",
         deviants=((2, "split-bids"),)),
    dict(w=W, z=Z, deviants=((0, "refuse-remedy"),), crash=((2, 0.5),)),
    dict(w=W, z=Z, deviants=((1, "multiple-bids"), (3, "wrong-payments"))),
    dict(w=W, z=Z, crash=((2, 0.5),)),
    dict(w=W, z=Z, crash=((1, 0.0), (3, 0.75))),
    dict(w=W, z=Z, bidding_mode="commit", drop_rate=0.2, seed=1),
    dict(w=W, z=Z, bidding_mode="naive", drop_rate=0.1, seed=7),
    dict(w=W, z=Z, committee=4),
    dict(w=W, z=Z, committee=7, byzantine=((0, "silent"),
                                           (1, "equivocate"))),
]


def _solo(request):
    """(settlement digest, wire digest) of the legacy solo path."""
    mech = build_mechanism(request)
    outcome = mech.run()
    return (settlement_digest(protocol_result_to_dict(outcome)),
            wire_digest(mech.engine.bus.log))


def _arbitrated(request, policy="fifo"):
    """(settlement digest, wire digest) of the same run via the arbiter."""
    multi = MultiEngagementRequest(engagements=(request.to_dict(),))
    (job,) = multi.jobs()
    out = BusArbiter(request.z, (job,), policy=policy).run()
    return (settlement_digest(protocol_result_to_dict(out.results["E1"])),
            out.wire_digests["E1"])


class TestSoloEquivalence:
    @pytest.mark.parametrize("kwargs", BASELINE,
                             ids=lambda kw: "-".join(
                                 f"{k}" for k in sorted(kw) if k != "w"))
    def test_k1_fifo_is_the_solo_run(self, kwargs):
        request = EngagementRequest(**kwargs)
        assert _arbitrated(request) == _solo(request)

    def test_k1_wire_digest_is_bit_for_bit(self):
        # Sanity that the wire comparison has teeth: a different
        # bidding transport must change the wire digest while the
        # settlement stays put.
        atomic = EngagementRequest(w=W, z=Z)
        commit = EngagementRequest(w=W, z=Z, bidding_mode="commit")
        s_a, w_a = _solo(atomic)
        s_c, w_c = _solo(commit)
        assert s_a == s_c
        assert w_a != w_c


class TestPolicyInvariance:
    def _jobs(self):
        return tuple(
            EngagementJob(engagement_id=f"E{i + 1}", w=w,
                          kind=NetworkKind(kind))
            for i, (w, kind) in enumerate([
                ((4.0, 6.0, 10.0, 8.0), "ncp-fe"),
                ((2.0, 3.0, 5.0), "ncp-nfe"),
                ((1.0, 1.5, 2.5, 2.0), "ncp-fe"),
            ]))

    def test_settlements_identical_across_policies_and_solo(self):
        jobs = self._jobs()
        solo = {
            j.engagement_id: settlement_digest(protocol_result_to_dict(
                build_mechanism(EngagementRequest(
                    w=j.w, z=Z, kind=j.kind.value)).run()))
            for j in jobs}
        for policy in POLICIES:
            out = BusArbiter(Z, jobs, policy=policy).run()
            got = {eid: settlement_digest(protocol_result_to_dict(r))
                   for eid, r in out.results.items()}
            assert got == solo, policy

    def test_sjf_reorders_and_lowers_mean_flow_time(self):
        jobs = self._jobs()
        fifo = BusArbiter(Z, jobs, policy="fifo").run()
        sjf = BusArbiter(Z, jobs, policy="sjf").run()
        assert sjf.order == ("E3", "E2", "E1")
        assert fifo.order == ("E1", "E2", "E3")
        assert sjf.mean_flow_time < fifo.mean_flow_time

    def test_rr_interleaves_grants(self):
        jobs = self._jobs()
        out = BusArbiter(Z, jobs, policy="rr").run()
        first_three = [g.engagement_id for g in out.grants[:3]]
        assert first_three == ["E1", "E2", "E3"]
        # Completions still all land, and every engagement settles.
        assert set(out.results) == {"E1", "E2", "E3"}
        assert all(r.completed for r in out.results.values())

    def test_grants_cover_every_phase_once_per_engagement(self):
        jobs = self._jobs()
        out = BusArbiter(Z, jobs, policy="fifo").run()
        per = {}
        for g in out.grants:
            per.setdefault(g.engagement_id, []).append(g.phase)
        for eid, phases in per.items():
            assert phases == ["BIDDING", "ALLOCATING_LOAD",
                              "PROCESSING_LOAD", "COMPUTING_PAYMENTS"], eid


class TestApiPath:
    def _request(self, policy="fifo"):
        return MultiEngagementRequest(
            engagements=(
                EngagementRequest(w=(4.0, 6.0, 10.0, 8.0), z=Z).to_dict(),
                EngagementRequest(w=(2.0, 3.0, 5.0), z=Z,
                                  kind="ncp-nfe").to_dict(),
            ),
            policy=policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_executor_matches_serial_reference(self, policy):
        request = self._request(policy)
        result = run_multi_engagement(request)
        assert result.digest() == serial_reference(request)

    def test_execute_dispatch_is_byte_identical(self):
        request = self._request()
        direct = run_multi_engagement(request)
        dispatched = execute(request)
        assert dispatched.to_dict() == direct.to_dict()

    def test_result_round_trips(self):
        from repro.api import result_from_dict

        result = run_multi_engagement(self._request("sjf"))
        clone = result_from_dict(result.to_dict())
        assert clone.digest() == result.digest()
        assert clone.order == result.order
        assert clone.completions == result.completions


class TestValidation:
    def test_duplicate_ids_rejected(self):
        job = EngagementJob(engagement_id="E1", w=W, kind=NetworkKind("ncp-fe"))
        with pytest.raises(ValueError, match="duplicate"):
            BusArbiter(Z, (job, job))

    def test_unknown_policy_rejected(self):
        job = EngagementJob(engagement_id="E1", w=W, kind=NetworkKind("ncp-fe"))
        with pytest.raises(ValueError, match="policy"):
            BusArbiter(Z, (job,), policy="lifo")

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BusArbiter(Z, ())

    def test_job_needs_two_processors(self):
        with pytest.raises(ValueError, match="at least 2"):
            EngagementJob(engagement_id="E1", w=(2.0,),
                          kind=NetworkKind("ncp-fe"))

    def test_job_needs_an_id(self):
        with pytest.raises(ValueError, match="non-empty"):
            EngagementJob(engagement_id="", w=W, kind=NetworkKind("ncp-fe"))
