"""Direct unit tests for the phase runners, on hand-built contexts.

Each runner is exercised against an :class:`EngagementContext`
assembled by hand (no ``ProtocolEngine.run()``), pinning the Section 4
phase invariants at the runner level:

* a fine raised in phase 1 or 2 terminates the engagement immediately
  (no downstream state is ever produced);
* a payment-phase fine does *not* void the completed computation — the
  engagement still settles on the referee's vector;
* degraded and normal paths settle through the same ``settle`` and
  both conserve the double-entry ledger exactly.
"""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.crypto.blocks import divide_load
from repro.dlt.platform import NetworkKind
from repro.network.faults import CrashFault, FaultPlan
from repro.protocol.context import EngagementContext
from repro.protocol.phases import Phase
from repro.protocol.runners import (
    AllocationRunner,
    BiddingRunner,
    PaymentsRunner,
    ProcessingRunner,
)

W = [2.0, 3.0, 5.0]
Z = 0.4


def build(w=W, kind=NetworkKind.NCP_FE, z=Z, **kw):
    """A wired engine plus a hand-built context (no engine.run())."""
    mech = DLSBLNCP(list(w), kind, z, pki_seed=11, **kw)
    eng = mech.engine
    ctx = EngagementContext(
        agents=eng.agents, originator=eng.originator, kind=eng.kind,
        z=eng.z, num_blocks=eng.num_blocks, bidding_mode=eng.bidding_mode,
        policy=eng.policy, pki=eng.pki, user_key=eng.user_key,
        referee=eng.referee, infra=eng.infra, bus=eng.bus, memo=eng.memo,
        deadlines=eng.deadlines, retry=eng.retry, fault_plan=eng._fault_plan,
        order=eng.order, bulletin=eng._bulletin, received=eng._received,
        blocks=divide_load(eng.user_key, 1.0, eng.num_blocks),
    )
    return eng, ctx


def run_phase(eng, ctx, runner):
    eng.bus.enter_phase(runner.phase)
    return runner.run(ctx)


def run_until(eng, ctx, last_phase):
    """Drive runners in protocol order through *last_phase*."""
    runners = {r.phase: r for r in (BiddingRunner(), AllocationRunner(),
                                    ProcessingRunner(), PaymentsRunner())}
    phase = Phase.BIDDING
    while True:
        outcome = run_phase(eng, ctx, runners[phase])
        if phase is last_phase or outcome.next_phase is None:
            return outcome
        phase = outcome.next_phase


class TestBiddingRunner:
    def test_honest_cohort_is_fixed(self):
        eng, ctx = build()
        outcome = run_phase(eng, ctx, BiddingRunner())
        assert outcome.next_phase is Phase.ALLOCATING_LOAD
        assert ctx.active == ["P1", "P2", "P3"]
        assert ctx.bids == {"P1": 2.0, "P2": 3.0, "P3": 5.0}
        assert ctx.net_bids is not None
        assert ctx.fine > 0

    def test_phase1_fine_terminates_immediately(self):
        # Section 4 invariant: a Bidding-phase fine ends the engagement
        # on the spot — nothing downstream (allocation, meters,
        # payments) is ever produced.
        eng, ctx = build(behaviors={
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})})
        outcome = run_phase(eng, ctx, BiddingRunner())
        assert outcome.terminates
        assert outcome.fines > 0
        assert not ctx.completed
        assert ctx.terminal_phase is Phase.BIDDING
        assert ctx.alpha is None
        assert ctx.payments == {}
        assert ctx.phi == {}
        # Fines and compensations moved through escrow: conserved.
        assert abs(eng.infra.ledger.total) < 1e-9

    def test_abstainer_is_excluded_not_fined(self):
        eng, ctx = build(behaviors={1: AgentBehavior(abstain=True)})
        outcome = run_phase(eng, ctx, BiddingRunner())
        assert outcome.next_phase is Phase.ALLOCATING_LOAD
        assert ctx.active == ["P1", "P3"]
        assert outcome.fines == 0


class TestAllocationRunner:
    def test_blocks_are_partitioned_and_shipped(self):
        eng, ctx = build()
        run_phase(eng, ctx, BiddingRunner())
        outcome = run_phase(eng, ctx, AllocationRunner())
        assert outcome.next_phase is Phase.PROCESSING_LOAD
        assert sum(len(s) for s in ctx.slices.values()) == ctx.num_blocks
        for name in ctx.active:
            assert len(ctx.received[name]) == len(ctx.slices[name])
        assert set(ctx.ready) == set(ctx.active)
        assert ctx.alpha is not None and len(ctx.alpha) == len(ctx.active)

    def test_phase2_fine_terminates_immediately(self):
        # Section 4 invariant: an Allocating-Load dispute fine ends the
        # engagement before any processing or payments happen.
        eng, ctx = build(behaviors={
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P3",
                                               "delta_blocks": 2})})
        run_phase(eng, ctx, BiddingRunner())
        outcome = run_phase(eng, ctx, AllocationRunner())
        assert outcome.terminates
        assert outcome.fines > 0
        assert not ctx.completed
        assert ctx.terminal_phase is Phase.ALLOCATING_LOAD
        assert ctx.payments == {}
        assert ctx.phi == {}
        assert abs(eng.infra.ledger.total) < 1e-9


class TestProcessingRunner:
    def test_meters_record_alpha_times_w(self):
        eng, ctx = build()
        run_until(eng, ctx, Phase.ALLOCATING_LOAD)
        outcome = run_phase(eng, ctx, ProcessingRunner())
        assert outcome.next_phase is Phase.COMPUTING_PAYMENTS
        for n in ctx.active:
            assert ctx.phi[n] == pytest.approx(
                ctx.alpha_map[n] * ctx.w_exec[n])
        assert ctx.realized > 0


class TestPaymentsRunner:
    def test_honest_run_settles(self):
        eng, ctx = build()
        run_until(eng, ctx, Phase.PROCESSING_LOAD)
        outcome = run_phase(eng, ctx, PaymentsRunner())
        assert outcome.terminates
        assert outcome.fines == 0
        assert ctx.completed
        assert ctx.terminal_phase is Phase.COMPLETE
        assert set(ctx.payments) == set(ctx.active)
        assert all(q > 0 for q in ctx.payments.values())

    def test_payment_phase_fine_does_not_void_computation(self):
        # Section 4 invariant: a Computing-Payments fine settles on the
        # referee's recomputed vector instead of voiding the run.
        eng, ctx = build(behaviors={
            1: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})})
        outcome = run_until(eng, ctx, Phase.COMPUTING_PAYMENTS)
        assert outcome.fines > 0
        assert ctx.completed
        assert ctx.terminal_phase is Phase.COMPLETE
        # The settled vector equals the honest one — the deviant's
        # submission changed nothing but its own fine.
        eng2, ctx2 = build()
        run_until(eng2, ctx2, Phase.COMPUTING_PAYMENTS)
        assert ctx.payments == pytest.approx(ctx2.payments)


class TestSettleIsShared:
    """Degraded and normal paths settle identically (satellite #1)."""

    def test_runner_drive_plus_settle_matches_engine_run(self):
        eng, ctx = build()
        run_until(eng, ctx, Phase.COMPUTING_PAYMENTS)
        result = eng.settle(ctx)
        reference = DLSBLNCP(W, NetworkKind.NCP_FE, Z, pki_seed=11).run()
        assert result.payments == pytest.approx(reference.payments)
        assert result.balances == pytest.approx(reference.balances)
        assert result.utilities == pytest.approx(reference.utilities)

    @pytest.mark.parametrize("fault_plan", [
        None,
        FaultPlan(crashes=(CrashFault("P3", phase=Phase.PROCESSING_LOAD,
                                      progress=0.5),)),
        FaultPlan(crashes=(CrashFault("P1", phase=Phase.PROCESSING_LOAD,
                                      progress=0.3),)),
        FaultPlan(crashes=(CrashFault("P2",
                                      phase=Phase.COMPUTING_PAYMENTS),)),
    ], ids=["normal", "crash-mid", "crash-originator", "crash-payments"])
    def test_every_path_conserves_the_ledger(self, fault_plan):
        w = [2.0, 3.0, 5.0, 4.0]
        mech = DLSBLNCP(w, NetworkKind.NCP_FE, Z, pki_seed=11,
                        fault_plan=fault_plan)
        out = mech.run()
        ledger = mech.engine.infra.ledger
        assert abs(ledger.total) < 1e-9
        if out.payments and any(out.payments.values()):
            # The user's bill equals the settled payment vector exactly
            # — the same settle() produced both, on every path.
            assert out.user_cost == pytest.approx(
                sum(out.payments.values()))
