"""Stateful property test: the ledger conserves money under any history."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.protocol.payment_infra import Ledger, PaymentInfrastructure

NAMES = ["user", "P1", "P2", "P3", "escrow"]


class LedgerMachine(RuleBasedStateMachine):
    """Random walks over the payment infrastructure's operations."""

    def __init__(self):
        super().__init__()
        self.infra = PaymentInfrastructure()
        self.collected = 0.0
        self.distributed = 0.0

    @rule(src=st.sampled_from(NAMES), dst=st.sampled_from(NAMES),
          amount=st.floats(min_value=0.0, max_value=100.0))
    def transfer(self, src, dst, amount):
        self.infra.ledger.transfer(src, dst, amount, memo="fuzz")

    @rule(who=st.sampled_from(["P1", "P2", "P3"]),
          amount=st.floats(min_value=0.0, max_value=50.0))
    def fine(self, who, amount):
        self.infra.collect_fine(who, amount, "fuzz-offence")
        self.collected += amount

    @rule(amount=st.floats(min_value=0.0, max_value=10.0),
          beneficiary=st.sampled_from(["P1", "P2", "P3"]))
    def reward(self, amount, beneficiary):
        # Never distribute more than escrow holds (the referee's code
        # guarantees this by construction; the machine mirrors it).
        available = self.infra.balance(PaymentInfrastructure.ESCROW)
        pay = min(amount, max(available, 0.0))
        if pay > 0:
            self.infra.distribute_from_escrow({beneficiary: pay}, "fuzz")
            self.distributed += pay

    @rule(payments=st.dictionaries(st.sampled_from(["P1", "P2", "P3"]),
                                   st.floats(min_value=-20, max_value=20),
                                   max_size=3))
    def remit(self, payments):
        self.infra.remit_payments(payments)

    @invariant()
    def money_is_conserved(self):
        assert abs(self.infra.ledger.total) < 1e-6

    @invariant()
    def history_is_append_only(self):
        assert len(self.infra.ledger.history) >= 0
        for t in self.infra.ledger.history[-3:]:
            assert t.amount >= 0


LedgerMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)
TestLedgerStateMachine = LedgerMachine.TestCase
