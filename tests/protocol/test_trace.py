"""Tests for protocol transcripts."""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.protocol.trace import describe_message, render_transcript, traffic_summary


def run_mech(behaviors=None):
    mech = DLSBLNCP([2.0, 3.0, 5.0], NetworkKind.NCP_FE, 0.4,
                    behaviors=behaviors)
    outcome = mech.run()
    return mech, outcome


class TestTranscript:
    def test_honest_run_covers_all_phases(self):
        mech, _ = run_mech()
        text = render_transcript(mech.engine.bus)
        for marker in ("bid", "load", "meter", "payment-vector", "bill"):
            assert marker in text

    def test_line_per_message(self):
        mech, _ = run_mech()
        text = render_transcript(mech.engine.bus)
        assert len(text.splitlines()) == len(mech.engine.bus.log) + 1

    def test_terminated_run_shows_claim_and_verdict(self):
        mech, out = run_mech({1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        assert not out.completed
        text = render_transcript(mech.engine.bus)
        assert "claim" in text
        assert "verdict" in text
        assert "fined=['P2']" in text

    def test_bid_lines_show_values(self):
        mech, _ = run_mech()
        text = render_transcript(mech.engine.bus)
        assert "bid=2" in text and "bid=5" in text


class TestTrafficSummary:
    def test_summary_totals_match_stats(self):
        mech, _ = run_mech()
        bus = mech.engine.bus
        text = traffic_summary(bus)
        assert str(bus.stats.control_bytes) in text
        assert "TOTAL (control)" in text

    def test_only_present_kinds_listed(self):
        mech, _ = run_mech()
        text = traffic_summary(mech.engine.bus)
        assert "claim" not in text  # no disputes in an honest run


class TestDescribeMessage:
    def test_broadcast_marked_all(self):
        mech, _ = run_mech()
        first = mech.engine.bus.log[0]
        line = describe_message(first)
        assert "ALL" in line
        assert "P1" in line

    def test_commit_mode_transcript(self):
        from repro.core.dls_bl_ncp import DLSBLNCP
        from repro.dlt.platform import NetworkKind

        mech = DLSBLNCP([2.0, 3.0, 5.0], NetworkKind.NCP_FE, 0.4,
                        bidding_mode="commit")
        mech.run()
        text = render_transcript(mech.engine.bus)
        assert "commitment" in text
        assert "digest=" in text


class TestPhaseSpans:
    def test_every_run_emits_spans(self):
        _, out = run_mech()
        assert [s.phase for s in out.spans] == [
            "BIDDING", "ALLOCATING_LOAD", "PROCESSING_LOAD",
            "COMPUTING_PAYMENTS"]
        for span in out.spans:
            assert span.t_end >= span.t_start
            assert span.messages >= 0 and span.bytes >= 0

    def test_terminated_run_stops_at_offending_phase(self):
        _, out = run_mech({1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        assert [s.phase for s in out.spans] == ["BIDDING"]
        span = out.spans[0]
        assert span.verdicts == ("bidding-equivocation",)
        assert span.fines > 0

    def test_span_counters_sum_to_traffic(self):
        mech, out = run_mech()
        # Everything except the settlement BILL is attributed to a phase.
        assert sum(s.messages for s in out.spans) == \
            mech.engine.bus.stats.messages - 1
        assert sum(s.retries for s in out.spans) == \
            mech.engine.bus.stats.retries

    def test_spans_to_dict_is_versioned(self):
        from repro.protocol.trace import spans_to_dict

        _, out = run_mech()
        doc = spans_to_dict(out.spans)
        assert doc["format"] == "repro/protocol-trace/v1"
        assert len(doc["spans"]) == 4
        assert doc["spans"][0]["phase"] == "BIDDING"
        assert doc["spans"][0]["duration"] == pytest.approx(
            doc["spans"][0]["t_end"] - doc["spans"][0]["t_start"])

    def test_render_spans_tabulates(self):
        from repro.protocol.trace import render_spans

        _, out = run_mech()
        text = render_spans(out.spans)
        assert "BIDDING" in text and "COMPUTING_PAYMENTS" in text
