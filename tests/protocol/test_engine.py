"""Integration tests for the DLS-BL-NCP protocol engine."""

import numpy as np
import pytest

from repro.agents.behaviors import AgentBehavior, Deviation, misreport, slow_execution, truthful
from repro.core.dls_bl import DLSBL
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.core.fines import FinePolicy
from repro.dlt.platform import NetworkKind
from repro.network.messages import MessageKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W3, PROTO_Z, run_protocol

W = PROTO_W3
Z = PROTO_Z


def run(kind=NetworkKind.NCP_FE, behaviors=None, w=W, z=Z, **kw):
    return run_protocol(kind, behaviors, w=w, z=z, **kw)


class TestApiValidation:
    def test_rejects_cp_kind(self):
        with pytest.raises(ValueError, match="without control processors"):
            DLSBLNCP(W, NetworkKind.CP, Z)

    def test_rejects_single_processor(self):
        with pytest.raises(ValueError):
            DLSBLNCP([2.0], NetworkKind.NCP_FE, Z)

    def test_behavior_list_length_checked(self):
        with pytest.raises(ValueError):
            DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors=[truthful()])


class TestHonestRun:
    def test_completes_with_phase_complete(self, ncp_kind):
        out = run(ncp_kind)
        assert out.completed
        assert out.terminal_phase is Phase.COMPLETE
        assert out.verdicts == ()

    def test_matches_centralized_mechanism(self, ncp_kind):
        # The distributed protocol must settle exactly the payments the
        # centralized DLS-BL computes (Theorem 5.2's reduction).
        out = run(ncp_kind)
        central = DLSBL(ncp_kind, Z).truthful_run(W)
        for i, name in enumerate(out.order):
            assert out.payments[name] == pytest.approx(central.payments[i])
            assert out.utilities[name] == pytest.approx(central.utilities[i])

    def test_utilities_nonnegative(self, ncp_kind):
        out = run(ncp_kind)
        assert all(u >= -1e-10 for u in out.utilities.values())

    def test_money_conserved(self, ncp_kind):
        out = run(ncp_kind)
        total = sum(out.balances.values())
        assert total == pytest.approx(0.0, abs=1e-9)

    def test_user_pays_sum_of_payments(self, ncp_kind):
        out = run(ncp_kind)
        assert out.user_cost == pytest.approx(sum(out.payments.values()))

    def test_traffic_recorded(self, ncp_kind):
        out = run(ncp_kind)
        assert out.traffic.by_kind[MessageKind.BID] == 3
        assert out.traffic.by_kind[MessageKind.PAYMENT_VECTOR] == 3
        assert out.traffic.by_kind[MessageKind.LOAD] == 2  # originator keeps its share
        assert out.traffic.by_kind[MessageKind.METER] == 1

    def test_deterministic(self, ncp_kind):
        a, b = run(ncp_kind), run(ncp_kind)
        assert a.payments == b.payments
        assert a.traffic.messages == b.traffic.messages


class TestMisreportingWithinProtocol:
    def test_misreport_completes_but_pays_less(self, ncp_kind):
        honest = run(ncp_kind)
        lied = run(ncp_kind, behaviors={1: misreport(1.5)})
        assert lied.completed  # misreporting is NOT a protocol offence
        assert lied.utilities["P2"] <= honest.utilities["P2"] + 1e-9

    def test_slow_execution_completes_but_pays_less(self, ncp_kind):
        honest = run(ncp_kind)
        slow = run(ncp_kind, behaviors={2: slow_execution(1.5)})
        assert slow.completed
        assert slow.utilities["P3"] <= honest.utilities["P3"] + 1e-9
        assert slow.phi["P3"] == pytest.approx(slow.alpha["P3"] * 5.0 * 1.5)


class TestBiddingPhaseDeviations:
    def test_multiple_bids_terminates_in_bidding(self, ncp_kind):
        out = run(ncp_kind, behaviors={1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        assert not out.completed
        assert out.terminal_phase is Phase.BIDDING
        assert list(out.fined) == ["P2"]
        assert out.fined["P2"] == pytest.approx(out.fine_amount)

    def test_informers_rewarded_evenly(self, ncp_kind):
        out = run(ncp_kind, behaviors={1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        share = out.fine_amount / 2
        assert out.balances["P1"] == pytest.approx(share)
        assert out.balances["P3"] == pytest.approx(share)
        assert out.balances["P2"] == pytest.approx(-out.fine_amount)

    def test_deviant_utility_negative_compliant_positive(self, ncp_kind):
        out = run(ncp_kind, behaviors={1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})})
        assert out.utilities["P2"] < 0
        assert out.utilities["P1"] > 0 and out.utilities["P3"] > 0

    def test_false_equivocation_claim_fines_claimant(self, ncp_kind):
        out = run(ncp_kind, behaviors={0: AgentBehavior(
            deviations={Deviation.FALSE_EQUIVOCATION_CLAIM},
            deviation_params={"victim": "P3"})})
        assert not out.completed
        assert list(out.fined) == ["P1"]

    def test_detection_survives_silent_observers(self, ncp_kind):
        # One honest monitor suffices.
        out = run(ncp_kind, behaviors={
            0: AgentBehavior(deviations={Deviation.SILENT_OBSERVER}),
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}),
        })
        assert list(out.fined) == ["P2"]

    def test_all_silent_lets_cheat_pass_bidding(self, ncp_kind):
        # If nobody monitors, no claim is filed and the protocol runs on
        # (using the first bid).  This is why informer rewards exist.
        out = run(ncp_kind, behaviors={
            0: AgentBehavior(deviations={Deviation.SILENT_OBSERVER}),
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS,
                                         Deviation.SILENT_OBSERVER}),
            2: AgentBehavior(deviations={Deviation.SILENT_OBSERVER}),
        })
        assert out.completed


class TestAllocationPhaseDeviations:
    def originator_index(self, kind):
        return 0 if kind is NetworkKind.NCP_FE else len(W) - 1

    def test_short_allocation_fines_originator(self, ncp_kind):
        lo = self.originator_index(ncp_kind)
        victim = "P2"
        out = run(ncp_kind, behaviors={lo: AgentBehavior(
            deviations={Deviation.SHORT_ALLOCATION},
            deviation_params={"victim": victim, "delta_blocks": 3})})
        assert not out.completed
        assert out.terminal_phase is Phase.ALLOCATING_LOAD
        lo_name = f"P{lo + 1}"
        assert list(out.fined) == [lo_name]
        assert out.fined[lo_name] == pytest.approx(out.fine_amount)

    def test_over_allocation_fines_originator(self, ncp_kind):
        lo = self.originator_index(ncp_kind)
        out = run(ncp_kind, behaviors={lo: AgentBehavior(
            deviations={Deviation.OVER_ALLOCATION},
            deviation_params={"victim": "P2", "delta_blocks": 3})})
        assert not out.completed
        assert list(out.fined) == [f"P{lo + 1}"]

    def test_false_allocation_claim_fines_claimant(self, ncp_kind):
        claimant = 1  # not the originator in either kind (m=3)
        out = run(ncp_kind, behaviors={claimant: AgentBehavior(
            deviations={Deviation.FALSE_ALLOCATION_CLAIM})})
        assert not out.completed
        assert list(out.fined) == ["P2"]

    def test_workers_already_started_are_compensated(self):
        # NCP-FE: the originator P1 computes from t=0; when P3 disputes,
        # P1 (and P2, who received before P3) must be compensated.
        out = run(NetworkKind.NCP_FE, behaviors={
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P3", "delta_blocks": 2})})
        assert not out.completed
        # P2 commenced work before the dispute; its compensation shows up
        # as a positive balance component beyond the informer share.
        v = out.verdicts[0]
        assert "P2" in v.compensated

    def test_manipulated_bid_vector_fines_manipulator(self, ncp_kind):
        # The claimant manipulates its own entry in the vector handed to
        # the referee after a genuine shortage: both get fined (the
        # originator case stays separate), the manipulator for
        # equivocated bids.
        lo = self.originator_index(ncp_kind)
        out = run(ncp_kind, behaviors={
            lo: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                              deviation_params={"victim": "P2", "delta_blocks": 3}),
            1: AgentBehavior(deviations={Deviation.MANIPULATED_BID_VECTOR}),
        })
        assert not out.completed
        assert "P2" in out.fined


class TestPaymentPhaseDeviations:
    def test_wrong_payments_fined_but_settles(self, ncp_kind):
        out = run(ncp_kind, behaviors={1: AgentBehavior(
            deviations={Deviation.WRONG_PAYMENTS})})
        assert out.completed  # work is done; referee recomputes Q
        assert list(out.fined) == ["P2"]
        # Correct processors split x*F/(m-x) on top of their payment.
        reward = out.fine_amount / 2
        honest = run(ncp_kind)
        assert out.balances["P1"] == pytest.approx(
            honest.balances["P1"] + reward)

    def test_contradictory_payment_vectors_fined(self, ncp_kind):
        out = run(ncp_kind, behaviors={2: AgentBehavior(
            deviations={Deviation.CONTRADICTORY_PAYMENTS})})
        assert out.completed
        assert list(out.fined) == ["P3"]

    def test_deviant_net_utility_below_honest(self, ncp_kind):
        honest = run(ncp_kind)
        out = run(ncp_kind, behaviors={1: AgentBehavior(
            deviations={Deviation.WRONG_PAYMENTS})})
        assert out.utilities["P2"] < honest.utilities["P2"]


class TestFineMagnitude:
    def test_fine_exceeds_compensation_sum(self, ncp_kind):
        out = run(ncp_kind, policy=FinePolicy(2.0))
        total_comp = sum(out.alpha[n] * W[i] for i, n in enumerate(out.order))
        assert out.fine_amount >= total_comp

    def test_sub_threshold_fine_can_make_deviation_pay(self):
        # With a fine far below the paper's bound, a bidding-phase
        # deviant can lose less than the honest utility it would forgo —
        # the deterrence argument (Lemma 5.1) needs F >= sum alpha_j w_j.
        tiny = FinePolicy(0.01)
        out = run(NetworkKind.NCP_FE, behaviors={1: AgentBehavior(
            deviations={Deviation.MULTIPLE_BIDS})}, policy=tiny)
        assert out.fined["P2"] < 0.1
