"""Crash tolerance and fault recovery in the protocol engine."""

import random

import pytest

from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.network.faults import CrashFault, FaultPlan, MessageFault, StallFault
from repro.protocol.phases import Phase
from tests.conftest import (
    PROTO_W4 as W,
    PROTO_Z as Z,
    assert_ledger_conserved,
    crash_plan,
    run_protocol as run,
)

TOL = 1e-9


class TestEmptyPlanIsNoOp:
    def test_results_identical_without_and_with_empty_plan(self, ncp_kind):
        base = run(ncp_kind)
        empty = run(ncp_kind, fault_plan=FaultPlan())
        assert empty == base

    def test_none_plan_identical(self, ncp_kind):
        assert run(ncp_kind, fault_plan=None) == run(ncp_kind)


class TestMidProcessingCrash:
    @pytest.mark.parametrize("progress", [0.0, 0.25, 0.5, 0.75])
    def test_degraded_completion(self, ncp_kind, progress):
        out = run(ncp_kind, fault_plan=crash_plan("P3", progress))
        assert out.completed
        assert out.degraded
        assert out.crashed == ("P3",)
        assert any(v.case == "unresponsive:P3" for v in out.verdicts)
        assert_ledger_conserved(out)

    def test_survivors_absorb_unfinished_load(self, ncp_kind):
        out = run(ncp_kind, fault_plan=crash_plan("P3", 0.5))
        survivors = [n for n in out.order if n != "P3"]
        assert set(out.reallocations) == set(survivors)
        assert sum(out.reallocations.values()) > 0
        # The crashed worker keeps what it metered, nothing more.
        base = run(ncp_kind)
        assert out.payments["P3"] < base.payments["P3"]

    def test_crashed_worker_not_fined(self, ncp_kind):
        # A crash is a fault, not an offence: metered partial work is
        # reimbursed at the bid rate and no fine is levied.
        out = run(ncp_kind, fault_plan=crash_plan("P3", 0.5))
        assert out.payments["P3"] > 0
        for v in out.verdicts:
            assert v.fines == ()

    def test_makespan_inflates(self, ncp_kind):
        base = run(ncp_kind, fault_plan=FaultPlan(messages=(
            MessageFault(action="drop", probability=0.0),)))
        out = run(ncp_kind, fault_plan=crash_plan("P3", 0.5))
        assert out.makespan_realized > base.makespan_realized

    def test_bit_for_bit_reproducible(self, ncp_kind):
        a = run(ncp_kind, fault_plan=crash_plan("P3", 0.5))
        b = run(ncp_kind, fault_plan=crash_plan("P3", 0.5))
        assert a == b

    def test_timed_crash_also_degrades(self):
        out = run(fault_plan=FaultPlan(crashes=(
            CrashFault("P2", at_time=0.5),)))
        assert out.completed and out.degraded
        assert out.crashed == ("P2",)
        assert_ledger_conserved(out)


class TestOriginatorCrash:
    def test_unrecoverable(self, ncp_kind):
        m = len(W)
        orig = f"P{ncp_kind.originator_index(m) + 1}"
        out = run(ncp_kind, fault_plan=crash_plan(orig, 0.5))
        assert not out.completed
        assert out.degraded
        assert orig in out.crashed
        # Nobody gets paid for an aborted job; sunk costs stay sunk.
        assert all(p == 0.0 for p in out.payments.values())


class TestBiddingCrash:
    def test_silent_bidder_becomes_abstention(self):
        out = run(fault_plan=FaultPlan(crashes=(
            CrashFault("P2", phase=Phase.BIDDING),)))
        assert out.completed
        assert "P2" not in out.participants
        assert out.alpha.get("P2", 0.0) == 0.0
        assert out.payments.get("P2", 0.0) == 0.0
        assert_ledger_conserved(out)

    def test_too_few_survivors_aborts(self):
        out = DLSBLNCP([2.0, 3.0], NetworkKind.NCP_FE, Z,
                       fault_plan=FaultPlan(crashes=(
                           CrashFault("P2", phase=Phase.BIDDING),))).run()
        assert not out.completed


class TestPaymentPhaseCrash:
    def test_full_payment_no_vector(self, ncp_kind):
        out = run(ncp_kind, fault_plan=FaultPlan(crashes=(
            CrashFault("P3", phase=Phase.COMPUTING_PAYMENTS),)))
        assert out.completed
        assert out.degraded
        assert out.crashed == ("P3",)
        assert out.reallocations == {}   # work was already done
        # Did all its work, so it is paid like the fault-free run.
        base = run(ncp_kind)
        assert out.payments["P3"] == pytest.approx(base.payments["P3"])
        assert_ledger_conserved(out)


class TestDropRecovery:
    @pytest.mark.parametrize("mode", ["commit", "naive"])
    def test_bounded_retry_recovers(self, mode):
        plan = FaultPlan(seed=7, messages=(
            MessageFault(action="drop", probability=0.3),))
        out = run(bidding_mode=mode, fault_plan=plan)
        assert out.completed
        assert not out.degraded
        assert out.traffic.retries > 0
        assert len(out.participants) == len(W)
        assert_ledger_conserved(out)

    def test_delay_recovered_too(self):
        plan = FaultPlan(seed=3, messages=(
            MessageFault(action="delay", probability=0.5, delay=0.1),))
        out = run(bidding_mode="commit", fault_plan=plan)
        assert out.completed
        assert_ledger_conserved(out)

    def test_atomic_mode_completes_under_heavy_drop(self):
        # Atomic broadcast carries the bids, so even at 90% unicast
        # loss only the point-to-point payment vectors are at risk.
        # When the retry budget is exhausted the sender is declared
        # unresponsive — a fault, not an offence — so no fines and the
        # ledger still conserves.
        plan = FaultPlan(seed=7, messages=(
            MessageFault(action="drop", probability=0.9),))
        out = run(bidding_mode="atomic", fault_plan=plan)
        assert out.completed
        assert len(out.participants) == len(W)
        assert all(v.case.startswith("unresponsive:") for v in out.verdicts)
        assert all(v.fines == () for v in out.verdicts)
        assert_ledger_conserved(out)


class TestEvidenceRetry:
    """Evidence traffic (claims, forwarded bid vectors) is a fault
    target like any other control message: a dropped claim must be
    retried within the evidence window, not silently vanish before the
    referee sees it."""

    def test_dropped_claim_is_retried_and_still_convicts(self):
        from repro.agents.behaviors import AgentBehavior, Deviation
        from repro.network.messages import MessageKind

        behaviors = {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}
        base = run(behaviors=behaviors)
        plan = FaultPlan(messages=(
            MessageFault(action="drop", kind=MessageKind.CLAIM,
                         max_applications=1),))
        out = run(behaviors=behaviors, fault_plan=plan)
        assert out.traffic.retries > 0
        # The retry made the drop invisible to the judgement itself.
        assert [v.case for v in out.verdicts] == [v.case for v in base.verdicts]
        assert out.verdicts and out.verdicts[0].fined_names == ("P2",)
        assert_ledger_conserved(out)

    def test_dropped_bid_vector_is_retried(self):
        # The allocation dispute forwards both bid vectors to the
        # referee; a short-changing originator is still convicted when
        # the first vector is eaten by the wire.
        from repro.agents.behaviors import AgentBehavior, Deviation
        from repro.network.messages import MessageKind

        behaviors = {0: AgentBehavior(
            deviations={Deviation.SHORT_ALLOCATION},
            deviation_params={"victim": "P2", "delta_blocks": 3})}
        plan = FaultPlan(messages=(
            MessageFault(action="drop", kind=MessageKind.BID_VECTOR,
                         max_applications=1),))
        out = run(behaviors=behaviors, fault_plan=plan)
        assert out.traffic.retries > 0
        assert out.verdicts and out.verdicts[0].fined_names == ("P1",)
        assert_ledger_conserved(out)


class TestMeterOutage:
    def test_billing_falls_back_to_bid(self, ncp_kind):
        out = run(ncp_kind, fault_plan=FaultPlan(meter_outages=("P3",)))
        assert out.completed
        assert not out.degraded
        assert out.verdicts == ()       # honest agents must not be fined
        assert_ledger_conserved(out)


class TestStalledTransfer:
    def test_stall_slows_but_completes(self):
        plan = FaultPlan(stalls=(StallFault(recipient="P3", factor=2.0),))
        base = run(fault_plan=FaultPlan(messages=(
            MessageFault(action="drop", probability=0.0),)))
        out = run(fault_plan=plan)
        assert out.completed
        assert out.makespan_realized >= base.makespan_realized
        assert_ledger_conserved(out)


class TestLedgerInvariant:
    """sum(balances) == 0 across randomized fault-free and faulty runs."""

    def test_randomized_runs_conserve(self, ncp_kind):
        rng = random.Random(2024)
        for trial in range(8):
            m = rng.randint(3, 6)
            w = [rng.uniform(1.0, 9.0) for _ in range(m)]
            z = rng.uniform(0.1, min(w) * 0.9)
            plans = [None]
            victim = f"P{rng.randrange(m) + 1}"
            plans.append(FaultPlan(crashes=(CrashFault(
                victim, phase=Phase.PROCESSING_LOAD,
                progress=rng.random()),)))
            plans.append(FaultPlan(seed=trial, messages=(
                MessageFault(action="drop", probability=0.2),)))
            for plan in plans:
                mode = "commit" if plan and plan.messages else "atomic"
                out = DLSBLNCP(w, ncp_kind, z, bidding_mode=mode,
                               fault_plan=plan).run()
                assert_ledger_conserved(out)


class TestSweeps:
    def test_crash_sweep_shape(self):
        from repro.analysis.resilience import crash_sweep

        samples = crash_sweep(W, NetworkKind.NCP_FE, Z,
                              progresses=(0.5,), num_blocks=60)
        assert len(samples) == len(W) - 1
        for s in samples:
            assert s.completed and s.degraded
            assert s.ledger_error < TOL
            assert s.makespan_inflation > 0

    def test_drop_sweep_zero_rate_is_flat(self):
        from repro.analysis.resilience import drop_sweep

        samples = drop_sweep(W, NetworkKind.NCP_FE, Z, rates=(0.0,),
                             seeds=range(2), num_blocks=60)
        for s in samples:
            assert s.completed
            assert s.makespan_inflation == pytest.approx(0.0)
            assert s.retries == 0
            assert s.welfare_loss == pytest.approx(0.0)


class TestCli:
    def test_protocol_crash_flag(self, capsys):
        from repro.cli import main

        assert main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "4", "--crash", "2:0.5"]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "P3" in out

    def test_resilience_command(self, capsys):
        from repro.cli import main

        assert main(["resilience", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "--progress", "0.5",
                     "--drop-rates", "0.2", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "crash" in out and "drop" in out
        assert "ledger" in out

    def test_bad_crash_spec(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                  "2", "3", "5", "--crash", "nope"])
