"""Tests for repeated-engagement market sessions."""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation, misreport
from repro.core.fines import FinePolicy
from repro.dlt.platform import NetworkKind
from repro.protocol.sessions import MarketSession

W = [2.0, 3.0, 5.0]
Z = 0.4


def session(**kw):
    return MarketSession(W, NetworkKind.NCP_FE, Z,
                         policy=FinePolicy(2.0), **kw)


class TestBasics:
    def test_requires_two_processors(self):
        with pytest.raises(ValueError):
            MarketSession([2.0], NetworkKind.NCP_FE, Z)

    def test_honest_engagements_accumulate_positively(self):
        s = session()
        s.run_schedule(5)
        assert len(s.records) == 5
        for name in s.names:
            assert s.cumulative_utility(name) > 0
            series = s.earnings_series(name)
            assert len(series) == 5
            assert all(b >= a for a, b in zip(series, series[1:]))

    def test_each_engagement_is_independent(self):
        s = session()
        a = s.run_engagement().outcome
        b = s.run_engagement().outcome
        assert a.payments == b.payments  # same instance, same outcome
        assert a is not b

    def test_cumulative_matches_sum_of_records(self):
        s = session()
        s.run_schedule(4)
        for name in s.names:
            total = sum(r.outcome.utilities[name] for r in s.records)
            assert s.cumulative_utility(name) == pytest.approx(total)


class TestSchedules:
    def test_dict_schedule(self):
        s = session()
        s.run_schedule(3, behavior_schedule={
            1: {0: misreport(1.5)},
        })
        # engagement 1 has P1 misreporting; others honest
        assert s.records[0].outcome.bids["P1"] == pytest.approx(2.0)
        assert s.records[1].outcome.bids["P1"] == pytest.approx(3.0)
        assert s.records[2].outcome.bids["P1"] == pytest.approx(2.0)

    def test_callable_schedule(self):
        s = session()
        s.run_schedule(4, behavior_schedule=lambda j: (
            {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}
            if j == 2 else None))
        assert s.records[2].outcome.fined == {
            "P2": pytest.approx(s.records[2].outcome.fine_amount)}
        assert s.records[3].outcome.fined == {}


class TestLongRunDeterrence:
    def test_one_deviation_sets_earnings_back_for_many_jobs(self):
        # The deterrence arithmetic the fine bound buys: after deviating
        # once in job 0, P2 needs many honest jobs to recover what its
        # peers earned meanwhile.
        cheat = session()
        cheat.run_schedule(8, behavior_schedule={
            0: {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}})
        honest = session()
        honest.run_schedule(8)
        gap = honest.cumulative_utility("P2") - cheat.cumulative_utility("P2")
        per_job = honest.records[0].outcome.utilities["P2"]
        assert gap > 5 * per_job  # the fine costs > 5 honest jobs' profit

    def test_informers_come_out_ahead(self):
        cheat = session()
        cheat.run_schedule(3, behavior_schedule={
            0: {1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}})
        honest = session()
        honest.run_schedule(3)
        for name in ("P1", "P3"):
            assert (cheat.cumulative_utility(name)
                    > honest.cumulative_utility(name))
