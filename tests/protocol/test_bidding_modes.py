"""Bidding modes: atomic broadcast vs point-to-point with/without
commitments (paper footnote 1)."""

import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W4, PROTO_Z, run_protocol

W = PROTO_W4
Z = PROTO_Z
MODES = ("atomic", "commit", "naive")


def run(mode, behaviors=None, kind=NetworkKind.NCP_FE):
    return run_protocol(kind, behaviors, bidding_mode=mode)


def split_bids(victim="P3", factor=0.5):
    return {1: AgentBehavior(deviations={Deviation.SPLIT_BIDS},
                             deviation_params={"victim": victim,
                                               "split_bid_factor": factor})}


class TestHonestEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_honest_outcomes_identical_across_modes(self, mode, ncp_kind):
        base = DLSBLNCP(W, ncp_kind, Z).run()
        out = DLSBLNCP(W, ncp_kind, Z, bidding_mode=mode).run()
        assert out.completed
        for n in out.order:
            assert out.payments[n] == pytest.approx(base.payments[n])

    def test_commit_mode_publishes_commitments(self):
        from repro.network.messages import MessageKind

        mech = DLSBLNCP(W, NetworkKind.NCP_FE, Z, bidding_mode="commit")
        out = mech.run()
        assert out.traffic.by_kind[MessageKind.COMMITMENT] == len(W)

    def test_p2p_bid_traffic_is_quadratic(self):
        from repro.network.messages import MessageKind

        mech_a = DLSBLNCP(W, NetworkKind.NCP_FE, Z)
        out_a = mech_a.run()
        mech_p = DLSBLNCP(W, NetworkKind.NCP_FE, Z, bidding_mode="naive")
        out_p = mech_p.run()
        m = len(W)
        assert out_a.traffic.by_kind[MessageKind.BID] == m        # broadcasts
        assert out_p.traffic.by_kind[MessageKind.BID] == m * (m - 1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="bidding_mode"):
            DLSBLNCP(W, NetworkKind.NCP_FE, Z, bidding_mode="gossip")


class TestSplitBidsUnderCommitments:
    def test_caught_in_bidding_phase(self, ncp_kind):
        out = run("commit", split_bids(), ncp_kind)
        assert not out.completed
        assert out.terminal_phase is Phase.BIDDING
        assert list(out.fined) == ["P2"]
        assert out.verdicts[0].fines[0].offence == "commitment-violation"

    def test_no_work_wasted(self):
        out = run("commit", split_bids())
        assert all(c == 0.0 for c in out.costs.values())

    def test_informers_rewarded(self):
        out = run("commit", split_bids())
        for n in ("P1", "P3", "P4"):
            assert out.balances[n] > 0


class TestSplitBidsNaive:
    def test_slips_past_bidding_caught_at_allocation(self, ncp_kind):
        out = run("naive", split_bids(), ncp_kind)
        assert not out.completed
        assert out.terminal_phase is Phase.ALLOCATING_LOAD
        assert list(out.fined) == ["P2"]

    def test_work_already_wasted(self):
        # The victim disputes only after earlier workers started: the
        # cost of the missing commitments is measurable wasted compute.
        out = run("naive", split_bids(victim="P4"))
        started = [n for n, c in out.costs.items() if c > 0]
        assert started  # somebody burned cycles before detection

    def test_small_split_survives_to_payment_phase(self):
        # A split too small to move any block count slips through the
        # allocation phase too; the payment-phase equivocation
        # cross-check still pins the right culprit (never a victim).
        out = run("naive", split_bids(factor=0.999999))
        if out.fined:
            assert list(out.fined) == ["P2"]
        # Whatever happened, no honest agent was fined (Lemma 5.2).
        for n in ("P1", "P3", "P4"):
            assert n not in out.fined


class TestSplitBidsImpossibleUnderAtomicBroadcast:
    def test_atomic_mode_ignores_split_flag(self):
        # Atomic broadcast physically delivers one message to all: the
        # deviation degenerates to an ordinary (single) bid.
        out = run("atomic", split_bids())
        assert out.completed
        assert out.fined == {}
