"""Tests for the ledger and payment infrastructure."""

import pytest

from repro.protocol.payment_infra import Ledger, PaymentInfrastructure


class TestLedger:
    def test_transfer_moves_money(self):
        led = Ledger()
        led.transfer("user", "P1", 5.0, "payment")
        assert led.balance("user") == -5.0
        assert led.balance("P1") == 5.0

    def test_total_always_zero(self):
        led = Ledger()
        led.transfer("a", "b", 3.0)
        led.transfer("b", "c", 1.5)
        led.transfer("c", "a", 0.5)
        assert led.total == pytest.approx(0.0)

    def test_unknown_account_balance_zero(self):
        assert Ledger().balance("nobody") == 0.0

    def test_rejects_negative_transfer(self):
        with pytest.raises(ValueError):
            Ledger().transfer("a", "b", -1.0)

    def test_history_records_memos(self):
        led = Ledger()
        led.transfer("a", "b", 1.0, memo="fine:equivocation")
        assert led.history[0].memo == "fine:equivocation"


class TestPaymentInfrastructure:
    def test_remit_bills_user(self):
        infra = PaymentInfrastructure()
        infra.remit_payments({"P1": 3.0, "P2": 2.0})
        assert infra.balance("user") == pytest.approx(-5.0)
        assert infra.balance("P1") == pytest.approx(3.0)

    def test_negative_payment_flows_back(self):
        infra = PaymentInfrastructure()
        infra.remit_payments({"P1": -2.0})
        assert infra.balance("P1") == pytest.approx(-2.0)
        assert infra.balance("user") == pytest.approx(2.0)

    def test_fine_and_distribution_conserve_money(self):
        infra = PaymentInfrastructure()
        infra.collect_fine("P2", 6.0, "equivocation")
        infra.distribute_from_escrow({"P1": 3.0, "P3": 3.0}, "informer-reward")
        assert infra.balance("P2") == pytest.approx(-6.0)
        assert infra.balance("P1") == pytest.approx(3.0)
        assert infra.balance(PaymentInfrastructure.ESCROW) == pytest.approx(0.0)
        assert infra.ledger.total == pytest.approx(0.0)

    def test_partial_distribution_leaves_escrow(self):
        infra = PaymentInfrastructure()
        infra.collect_fine("P2", 6.0, "x")
        infra.distribute_from_escrow({"P1": 4.0}, "reward")
        assert infra.balance(PaymentInfrastructure.ESCROW) == pytest.approx(2.0)
