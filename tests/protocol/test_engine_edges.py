"""Protocol engine edge cases: granularity extremes, tiny markets,
multiple simultaneous deviants, phase precedence."""

import numpy as np
import pytest

from repro.agents.behaviors import AgentBehavior, Deviation, misreport
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.protocol.phases import Phase
from tests.conftest import PROTO_W4 as W, PROTO_Z as Z


class TestGranularityExtremes:
    def test_fewer_blocks_than_processors(self):
        # 2 blocks, 4 processors: two workers are entitled to 0 blocks.
        # Nobody should dispute (entitlements are common knowledge) and
        # payments still settle on the continuous alpha.
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, num_blocks=2).run()
        assert out.completed
        assert out.fined == {}
        assert sum(out.alpha.values()) == pytest.approx(1.0)

    def test_single_block(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, num_blocks=1).run()
        assert out.completed

    def test_huge_block_count(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, num_blocks=5000).run()
        assert out.completed
        assert out.traffic.by_kind.total() > 0

    def test_short_allocation_with_coarse_blocks_still_caught(self):
        # Even at 10 blocks, shipping one block short is detected.
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, num_blocks=10,
                       behaviors={0: AgentBehavior(
                           deviations={Deviation.SHORT_ALLOCATION},
                           deviation_params={"victim": "P2",
                                             "delta_blocks": 1})}).run()
        assert not out.completed
        assert list(out.fined) == ["P1"]


class TestTinyMarkets:
    def test_two_processors_honest(self, ncp_kind):
        out = DLSBLNCP([2.0, 3.0], ncp_kind, Z).run()
        assert out.completed
        assert all(u >= -1e-10 for u in out.utilities.values())

    def test_two_processors_deviant(self, ncp_kind):
        out = DLSBLNCP([2.0, 3.0], ncp_kind, Z, behaviors={
            0: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}).run()
        assert not out.completed
        assert list(out.fined) == ["P1"]
        # The single informer takes the whole fine.
        assert out.balances["P2"] == pytest.approx(out.fine_amount)


class TestMultipleDeviants:
    def test_earlier_phase_wins(self):
        # A bidding-phase offence terminates before the allocation-phase
        # offence can even occur.
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}),
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P3",
                                               "delta_blocks": 2}),
        }).run()
        assert out.terminal_phase is Phase.BIDDING
        assert list(out.fined) == ["P2"]

    def test_two_payment_phase_deviants_both_fined(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            1: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS}),
            2: AgentBehavior(deviations={Deviation.CONTRADICTORY_PAYMENTS}),
        }).run()
        assert out.completed
        assert set(out.fined) == {"P2", "P3"}
        # 2F split between the 2 correct processors: F each.
        honest = DLSBLNCP(W, NetworkKind.NCP_FE, Z).run()
        assert out.balances["P1"] == pytest.approx(
            honest.balances["P1"] + out.fine_amount)

    def test_misreport_plus_deviation_composes(self):
        # A deviant that also lies about capacity: the fine applies, and
        # the misreport was baked into the fine base (computed on bids).
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            1: AgentBehavior(bid_factor=1.5,
                             deviations={Deviation.MULTIPLE_BIDS})}).run()
        assert list(out.fined) == ["P2"]
        assert out.bids["P2"] == pytest.approx(4.5)


class TestResultRecordConsistency:
    def test_alpha_defaults_zero_on_early_termination(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})}).run()
        assert set(out.alpha) == set(out.order)
        assert all(v == 0.0 for v in out.alpha.values())

    def test_phi_empty_before_processing_phase(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P2",
                                               "delta_blocks": 2})}).run()
        assert out.phi == {}
        assert out.makespan_realized is None

    def test_costs_nonzero_only_for_started_workers(self):
        out = DLSBLNCP(W, NetworkKind.NCP_FE, Z, behaviors={
            0: AgentBehavior(deviations={Deviation.SHORT_ALLOCATION},
                             deviation_params={"victim": "P4",
                                               "delta_blocks": 2})}).run()
        # P4 (last recipient) disputes; P1 (originator) and P2, P3 have
        # commenced.
        assert out.costs["P4"] == 0.0
        assert out.costs["P2"] > 0 and out.costs["P3"] > 0
