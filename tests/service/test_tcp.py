"""The transport seam: endpoint grammar, TCP parity, connect timeouts.

The daemon's machinery must be byte-identical over both transports, so
the headline test runs the same request against a unix-socket client
and a TCP client and compares canonical digests.  The connect-timeout
tests pin the PR 9 fix: a dead TCP endpoint fails in bounded time with
``OSError`` (then exit 2 at the CLI), exactly like a missing unix
socket path always has.
"""

import socket
import time

import pytest

from repro.api import EngagementRequest, execute
from repro.service import ServiceClient
from repro.service.tcp import (
    Endpoint,
    connect,
    parse_endpoint,
    send_envelope,
)

W = (2.0, 3.0, 5.0)
Z = 0.4


class TestEndpointGrammar:
    @pytest.mark.parametrize("spec,kind,address,port", [
        ("127.0.0.1:0", "tcp", "127.0.0.1", 0),
        ("localhost:7341", "tcp", "localhost", 7341),
        ("10.0.0.8:65535", "tcp", "10.0.0.8", 65535),
        ("/tmp/repro.sock", "unix", "/tmp/repro.sock", 0),
        ("/tmp/odd:123/repro.sock", "unix", "/tmp/odd:123/repro.sock", 0),
        ("relative.sock", "unix", "relative.sock", 0),
        ("host:notaport", "unix", "host:notaport", 0),
        (":123", "unix", ":123", 0),
    ])
    def test_parse(self, spec, kind, address, port):
        endpoint = parse_endpoint(spec)
        assert (endpoint.kind, endpoint.address, endpoint.port) \
            == (kind, address, port)

    def test_str_round_trips(self):
        for spec in ("127.0.0.1:7341", "/tmp/repro.sock"):
            assert str(parse_endpoint(spec)) == spec
        assert parse_endpoint(parse_endpoint("h:1")) == Endpoint("tcp",
                                                                 "h", 1)


class TestTcpParity:
    def test_tcp_digest_identical_to_unix_and_direct(self):
        req = EngagementRequest(w=W, z=Z, num_blocks=30)
        direct = execute(req).digest()
        with ServiceClient(tcp="127.0.0.1:0") as tcp_client:
            # Port 0 resolved: the client's endpoint names the real port.
            host, port = tcp_client.endpoint.rsplit(":", 1)
            assert host == "127.0.0.1" and int(port) > 0
            assert tcp_client.request(req).digest() == direct
        with ServiceClient() as unix_client:
            assert unix_client.request(req).digest() == direct

    def test_client_rejects_both_transports(self):
        with pytest.raises(ValueError, match="at most one"):
            ServiceClient(socket_path="/tmp/x.sock", tcp="127.0.0.1:0")


class TestConnectTimeout:
    def test_dead_unix_socket_fails_immediately(self, tmp_path):
        with pytest.raises(OSError):
            send_envelope(str(tmp_path / "absent.sock"),
                          {"id": 0, "op": "ping"})

    def test_unaccepting_tcp_endpoint_fails_within_connect_timeout(self):
        # A bound socket that never calls accept(): once its backlog is
        # full, connects hang at the TCP level — the exact shape that
        # used to stall `repro call --tcp` for the full I/O timeout.
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(0)
            port = listener.getsockname()[1]
            filler = []
            try:
                # Saturate the backlog so the next connect cannot finish.
                for _ in range(32):
                    s = socket.socket()
                    s.settimeout(0.2)
                    try:
                        s.connect(("127.0.0.1", port))
                    except OSError:
                        s.close()
                        break
                    filler.append(s)
                start = time.monotonic()
                with pytest.raises(OSError):
                    connect(f"127.0.0.1:{port}", timeout=300.0,
                            connect_timeout=0.5)
                elapsed = time.monotonic() - start
                # Bounded by connect_timeout, not the 300s I/O budget.
                assert elapsed < 10.0
            finally:
                for s in filler:
                    s.close()
        finally:
            listener.close()

    def test_refused_tcp_port_raises_oserror(self):
        # Grab a free port, close it, then connect: refused, not hung.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            send_envelope(f"127.0.0.1:{port}", {"id": 0, "op": "ping"},
                          connect_timeout=2.0)

    def test_connect_timeout_never_exceeds_io_timeout(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        start = time.monotonic()
        with pytest.raises(OSError):
            # timeout < default connect timeout: the tighter one wins.
            connect(f"127.0.0.1:{port}", timeout=0.5)
        assert time.monotonic() - start < 10.0
