"""Service integration: the daemon against the serial reference paths.

Every test talks to a real daemon — unix socket, asyncio server, warm
fork pool — through :class:`ServiceClient`.  The headline contract:
answers served concurrently off warm workers are byte-identical (by
canonical digest) to direct in-process calls of the same requests.

The synthetic sweep tasks registered at module import are inherited by
the service's fork workers because every client here is constructed
*after* import (the pool forks at construction).
"""

import os
import threading
import time

import pytest

from repro.api import EngagementRequest, SweepRequest, execute
from repro.service import ServiceClient, ServiceError
from repro.sweep import SweepPlan, register

W = (2.0, 3.0, 5.0)
Z = 0.4


@register("svc-poison")
def _poison(spec):
    os._exit(13)  # hard worker death: the BrokenProcessPool case


@register("svc-sleep")
def _sleep(spec):
    time.sleep(float(spec.params["t"]))
    return {"slept": float(spec.params["t"])}


def one_shot_plan(task: str, params: dict) -> SweepRequest:
    return SweepRequest(plan=SweepPlan.from_scenarios(
        task, [params], root_seed=0).to_dict())


def utility_sweep(n: int, seed: int) -> SweepRequest:
    return SweepRequest(plan=SweepPlan.from_scenarios(
        "utility-point",
        [{"w": list(W), "z": Z, "kind": "ncp-fe", "i": 0,
          "bid_factor": 1.0 + 0.02 * i, "exec_factor": 1.0}
         for i in range(n)],
        root_seed=seed).to_dict())


@pytest.fixture(scope="module")
def client():
    with ServiceClient(workers=2, queue_size=32) as c:
        yield c


class TestConcurrentMixedLoad:
    def test_16_concurrent_requests_digest_identical_to_direct(self, client):
        requests = (
            [EngagementRequest(w=(2.0 + 0.25 * i, 3.0, 5.0), z=Z)
             for i in range(8)]
            + [EngagementRequest(w=W, z=Z, kind="ncp-nfe", seed=i,
                                 deviants=((1, "multiple-bids"),))
               for i in range(4)]
            + [utility_sweep(3, seed) for seed in range(4)])
        assert len(requests) == 16
        results = [None] * 16

        def call(i):
            results[i] = client.request(requests[i])

        threads = [threading.Thread(target=call, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        for req, res in zip(requests, results):
            assert res is not None, "a request never completed"
            assert res.digest() == execute(req).digest(), (
                "served answer diverged from the direct serial call")

    def test_engagement_response_carries_trace_spans(self, client):
        res = client.request(EngagementRequest(w=W, z=Z, pki_seed=1))
        phases = [s["phase"] for s in res.spans]
        assert phases, "no per-phase spans attached to the response"
        assert any("BID" in p.upper() for p in phases)


class TestResultCache:
    def test_repeat_engagement_is_a_cache_hit(self, client):
        req = EngagementRequest(w=(2.5, 3.5, 5.5), z=Z, seed=99)
        before = client.stats().cache_hits
        first = client.request(req)
        assert first.cached is False
        second = client.request(req)
        assert second.cached is True
        assert second.digest() == first.digest()
        assert client.stats().cache_hits == before + 1

    def test_distinct_requests_do_not_collide(self, client):
        a = client.request(EngagementRequest(w=(2.1, 3.0, 5.0), z=Z))
        b = client.request(EngagementRequest(w=(2.2, 3.0, 5.0), z=Z))
        assert a.digest() != b.digest()


class TestErrorPaths:
    def test_invalid_request_gets_actionable_error(self, client):
        response = client.raw_request(
            {"schema": "repro/api/v1", "type": "engagement",
             "w": [1.0], "z": Z})
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid-request"
        assert "at least 2" in response["error"]["message"]

    def test_undecodable_line_is_answered_not_dropped(self, client):
        # send_envelope JSON-encodes; go below it for a raw bad line
        import json
        import socket

        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30)
            sock.connect(client.socket_path)
            sock.sendall(b"this is not json\n")
            data = sock.recv(65536)
        response = json.loads(data)
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid-request"

    def test_unknown_op_lists_valid_ops(self, client):
        response = client.raw_request({"op": "reboot"})
        assert response["ok"] is False
        assert "ping" in response["error"]["message"]

    def test_deadline_expires_running_request(self, client):
        with pytest.raises(ServiceError) as err:
            client.request(one_shot_plan("svc-sleep", {"t": 5.0}),
                           deadline=0.3)
        assert err.value.code == "deadline"
        assert client.stats().expired >= 1


class TestWorkerDeathIsolation:
    def test_poisoned_request_fails_alone(self, client):
        poison = one_shot_plan("svc-poison", {"x": 1})
        innocents = [EngagementRequest(w=(3.0 + 0.5 * i, 4.0, 6.0), z=Z)
                     for i in range(4)]
        outcomes = {}

        def call(name, req):
            try:
                outcomes[name] = client.request(req)
            except ServiceError as exc:
                outcomes[name] = exc

        threads = ([threading.Thread(target=call, args=("poison", poison))]
                   + [threading.Thread(target=call, args=(f"i{n}", r))
                      for n, r in enumerate(innocents)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        poisoned = outcomes["poison"]
        assert isinstance(poisoned, ServiceError)
        assert poisoned.code == "worker-died"
        for n, req in enumerate(innocents):
            res = outcomes[f"i{n}"]
            assert not isinstance(res, Exception), (
                f"innocent request {n} was killed by the poisoned one: {res}")
            assert res.digest() == execute(req).digest()
        assert client.stats().pool_rebuilds >= 1

    def test_pool_serves_normally_after_rebuild(self, client):
        req = EngagementRequest(w=(9.0, 8.0, 7.0), z=Z)
        assert client.request(req).digest() == execute(req).digest()


class TestBackpressure:
    def test_queue_overflow_is_rejected_with_backpressure(self):
        with ServiceClient(workers=1, queue_size=1) as small:
            codes = []
            results = []

            def call():
                try:
                    results.append(small.request(
                        one_shot_plan("svc-sleep", {"t": 1.0})))
                except ServiceError as exc:
                    codes.append(exc.code)

            threads = [threading.Thread(target=call) for _ in range(5)]
            for t in threads:
                t.start()
                time.sleep(0.1)   # admission order: run, queue, reject...
            for t in threads:
                t.join(timeout=120)
            assert codes, "no request was rejected despite a full queue"
            assert set(codes) == {"backpressure"}
            assert results, "the running/queued requests should complete"
            assert small.stats().rejected == len(codes)


class TestGracefulShutdown:
    def test_drain_completes_in_flight_and_queued_work(self):
        client = ServiceClient(workers=1, queue_size=8)
        try:
            outcomes = []

            def call():
                outcomes.append(client.request(
                    one_shot_plan("svc-sleep", {"t": 0.5})))

            threads = [threading.Thread(target=call) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.25)      # all three admitted; at most one done
            client.shutdown()     # must block until every answer is out
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == 3
            assert all(r.records[0]["slept"] == 0.5 for r in outcomes)
        finally:
            client.close()

    def test_requests_after_drain_are_refused(self):
        client = ServiceClient(workers=1)
        try:
            client.shutdown()
            with pytest.raises((ServiceError, OSError)):
                client.request(EngagementRequest(w=W, z=Z))
        finally:
            client.close()
