"""Loadgen determinism: same seed, same stream, same digest — anywhere.

The generator's whole value is that a soak run is *evidence*: the
request mix and arrival schedule are pure functions of the spec, and
the soak stream digest covers identities only (slot order, request
digest, settlement digest), never timing or cache state.  So the same
seed must produce byte-identical digests whether the stream is served
by direct in-process ``execute()``, one single-worker daemon, or a
sharded fleet of four — and the golden fixture pins the derivation
itself against accidental drift (bump ``MIX_VERSION`` to change it).
"""

import json
import pathlib

import pytest

from repro.api import execute
from repro.service import FleetDispatcher
from repro.service.loadgen import (
    MIX_VERSION,
    LoadgenSpec,
    build_mix,
    build_schedule,
    run_loadgen,
)
from tests.service.test_fleet import EmbeddedFleet

GOLDEN = pathlib.Path(__file__).parent / "golden" / "loadgen_seed7.json"
SPEC = LoadgenSpec(seed=7, requests=16, rate=200.0, concurrency=4,
                   soak=True)


def submit_direct(request):
    return {"ok": True, "result": execute(request).to_dict()}


class TestSeededDerivation:
    def test_mix_and_schedule_are_pure_functions_of_spec(self):
        assert [r.digest() for r in build_mix(SPEC)] \
            == [r.digest() for r in build_mix(SPEC)]
        assert build_schedule(SPEC) == build_schedule(SPEC)

    def test_different_seeds_differ(self):
        other = LoadgenSpec(seed=8, requests=16, rate=200.0)
        assert [r.digest() for r in build_mix(SPEC)] \
            != [r.digest() for r in build_mix(other)]
        assert build_schedule(SPEC) != build_schedule(other)

    def test_mix_contains_repeats_for_cache_coverage(self):
        digests = [r.digest() for r in build_mix(
            LoadgenSpec(seed=0, requests=100, rate=0))]
        assert len(set(digests)) < len(digests)

    def test_schedule_is_nondecreasing(self):
        offsets = build_schedule(SPEC)
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))
        assert all(o == 0.0 for o in build_schedule(
            LoadgenSpec(seed=7, requests=5, rate=0)))


class TestGoldenFixture:
    def test_arrival_stream_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        assert golden["mix_version"] == MIX_VERSION, \
            "MIX_VERSION changed: regenerate the golden fixture"
        mix = build_mix(SPEC)
        assert [r.TYPE for r in mix] == golden["request_types"]
        assert [r.digest() for r in mix] == golden["request_digests"]
        assert [round(o * 1e6) for o in build_schedule(SPEC)] \
            == golden["offsets_us"]

    def test_direct_soak_digest_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        report = run_loadgen(submit_direct, SPEC)
        assert report.errors == 0
        assert report.stream_digest == golden["stream_digest"]


class TestServingInvariance:
    """Same seed ⇒ same merged digest across serving topologies."""

    def test_one_worker_daemon_matches_fleet_of_four(self):
        golden = json.loads(GOLDEN.read_text())["stream_digest"]
        with EmbeddedFleet(1, workers=1) as single:
            solo = run_loadgen(single.dispatcher().submit, SPEC)
        assert solo.errors == 0
        assert solo.stream_digest == golden
        with EmbeddedFleet(4, workers=1) as fleet:
            dispatcher = fleet.dispatcher()
            quad = run_loadgen(dispatcher.submit, SPEC)
            assert quad.errors == 0
            assert quad.stream_digest == golden
            # The stream really was sharded, not served by one daemon.
            assert len(dispatcher.counters.by_endpoint) > 1

    def test_report_shape(self):
        report = run_loadgen(submit_direct,
                             LoadgenSpec(seed=1, requests=8, rate=0,
                                         concurrency=2, soak=True))
        data = report.to_dict()
        assert data["requests"] == 8 and data["ok"] == 8
        assert data["rps"] > 0
        assert data["p99_ms"] >= data["p50_ms"] >= 0
        assert sum(data["histogram_ms"].values()) == 8
        assert json.loads(report.to_json()) == data

    def test_submit_exceptions_become_client_errors(self):
        def explode(request):
            raise RuntimeError("boom")

        report = run_loadgen(explode,
                             LoadgenSpec(seed=1, requests=4, rate=0,
                                         concurrency=2, soak=True))
        assert report.errors == 4
        assert report.error_codes == {"client-error": 4}
        assert report.stream_digest  # errors still digest

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadgenSpec(requests=0)
        with pytest.raises(ValueError):
            LoadgenSpec(rate=-1.0)
        with pytest.raises(ValueError):
            LoadgenSpec(concurrency=0)


class TestFleetDispatcherValidation:
    def test_rejects_empty_and_duplicate_endpoints(self):
        with pytest.raises(ValueError):
            FleetDispatcher([])
        with pytest.raises(ValueError):
            FleetDispatcher(["127.0.0.1:1", "127.0.0.1:1"])
