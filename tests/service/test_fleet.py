"""Fleet differential + chaos suite: N sharded daemons vs the truth.

Three layers of evidence that the scale-out layer cannot change an
answer:

* **Differential** — fleets of N ∈ {1, 2, 4} daemons serving a mixed
  25-scenario stream (engagements, deviants, committees, sweeps,
  multi-engagement bundles, exact repeats) produce results
  digest-identical to direct in-process ``execute()``, under shuffled
  arrival orders and under a pathological shard function that forces
  every request onto one daemon.
* **Chaos, worker level** — a poisoned request (``os._exit`` in the
  fork worker) fails alone with its non-retryable code; the rest of
  the stream is untouched.  Uses embedded daemons, whose fork workers
  inherit this module's synthetic task registrations.
* **Chaos, daemon level** — SIGKILL a real ``repro serve`` subprocess
  mid-stream: every in-flight request either completes on a peer or
  fails with a retryable code, retries all succeed, no request hangs,
  and the surviving caches still answer digest-correctly.

Cross-daemon cache peeking is pinned separately: when a shard owner
dies, a peer that already holds the answer serves it from cache (the
``peek`` op) instead of recomputing.
"""

import os
import random
import signal
import threading
import time

import pytest

from repro.api import (
    EngagementRequest,
    MultiEngagementRequest,
    execute,
)
from repro.service import (
    RETRYABLE_CODES,
    FleetDispatcher,
    LocalFleet,
    ServiceClient,
)
from repro.sweep import register
from tests.service.test_service import one_shot_plan, utility_sweep

W = (2.0, 3.0, 5.0)
Z = 0.4
STREAM_TIMEOUT = 180.0  # generous wall-clock bound: "no hangs"


@register("fleet-poison")
def _poison(spec):  # pragma: no cover — runs in fork workers only
    os._exit(23)


def build_stream() -> list:
    """The mixed 25-scenario request stream (deterministic, fast)."""
    engagements = [
        EngagementRequest(w=(2.0 + 0.25 * i, 3.0, 5.0), z=Z, num_blocks=20)
        for i in range(6)
    ] + [
        EngagementRequest(w=W, z=Z, kind="ncp-nfe", num_blocks=20, seed=i,
                          deviants=((1, "multiple-bids"),))
        for i in range(3)
    ] + [
        EngagementRequest(w=W, z=Z, num_blocks=20, committee=4,
                          byzantine=((2, "silent"),)),
        EngagementRequest(w=(4.0, 2.0, 3.0, 5.0), z=0.6, num_blocks=30,
                          crash=((2, 0.5),), seed=11),
        EngagementRequest(w=W, z=Z, num_blocks=20, drop_rate=0.05,
                          seed=5),
        EngagementRequest(w=(2.5, 4.5), z=0.7, num_blocks=40,
                          bidding_mode="commit"),
    ]
    sweeps = [utility_sweep(3, seed) for seed in range(5)]
    multis = [
        MultiEngagementRequest(
            engagements=(
                EngagementRequest(w=W, z=Z, num_blocks=20).to_dict(),
                EngagementRequest(w=(3.0, 4.0), z=Z,
                                  num_blocks=20).to_dict()),
            policy=policy)
        for policy in ("fifo", "sjf", "rr")
    ]
    stream = engagements + sweeps + multis
    # Exact repeats: cache hits on the owners, and (in a fleet) proof
    # that repeats route shard-stably.
    stream += [engagements[0], sweeps[0], multis[0], engagements[3]]
    assert len(stream) == 25
    return stream


_DIRECT: dict[str, str] = {}


def direct_digests(stream) -> dict[str, str]:
    """request digest -> result digest, via in-process execute()."""
    for request in stream:
        key = request.digest()
        if key not in _DIRECT:
            _DIRECT[key] = execute(request).digest()
    return dict(_DIRECT)


class EmbeddedFleet:
    """N in-process daemons on loopback TCP (forked from this test
    process, so module-registered sweep tasks exist in the workers)."""

    def __init__(self, n: int, *, workers: int = 1) -> None:
        self.clients = []
        try:
            for _ in range(n):
                self.clients.append(
                    ServiceClient(tcp="127.0.0.1:0", workers=workers))
        except BaseException:
            self.close()
            raise
        self.endpoints = [c.endpoint for c in self.clients]

    def dispatcher(self, **kwargs) -> FleetDispatcher:
        return FleetDispatcher(self.endpoints, **kwargs)

    def close(self) -> None:
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def serve_stream(dispatcher, stream, *, order_seed=None, threads=4):
    """Drive the stream concurrently; return responses in stream order."""
    order = list(range(len(stream)))
    if order_seed is not None:
        random.Random(order_seed).shuffle(order)
    responses = [None] * len(stream)
    pending = list(order)
    lock = threading.Lock()

    def drain():
        while True:
            with lock:
                if not pending:
                    return
                slot = pending.pop(0)
            responses[slot] = dispatcher.submit(stream[slot])

    workers = [threading.Thread(target=drain) for _ in range(threads)]
    for w in workers:
        w.start()
    deadline = time.monotonic() + STREAM_TIMEOUT
    for w in workers:
        w.join(timeout=max(0.1, deadline - time.monotonic()))
    assert not any(w.is_alive() for w in workers), \
        "stream stalled: a dispatcher call hung"
    return responses


def assert_digest_identical(stream, responses, direct):
    assert len(responses) == len(stream)
    for request, response in zip(stream, responses):
        assert response is not None and response.get("ok"), \
            f"{request.TYPE} failed: {response!r}"
        from repro.api import result_from_dict

        assert result_from_dict(response["result"]).digest() \
            == direct[request.digest()]


class TestFleetDifferential:
    @pytest.mark.parametrize("n,order_seed", [(1, None), (2, 7), (4, 42)])
    def test_fleet_digest_identical_to_direct(self, n, order_seed):
        stream = build_stream()
        direct = direct_digests(stream)
        with EmbeddedFleet(n) as fleet:
            dispatcher = fleet.dispatcher()
            responses = serve_stream(dispatcher, stream,
                                     order_seed=order_seed)
            assert_digest_identical(stream, responses, direct)
            assert dispatcher.counters.requests == len(stream)
            assert dispatcher.counters.failovers == 0
            assert dispatcher.counters.unavailable == 0
            if n > 1:
                # 21 distinct digests over n shards: the partition is
                # deterministic, and for this stream it is non-trivial.
                assert len(dispatcher.counters.by_endpoint) > 1

    def test_forced_shard_collisions_still_identical(self):
        # A pathological shard function sends everything to daemon 0 —
        # routing must never be load-bearing for correctness.
        stream = build_stream()
        direct = direct_digests(stream)
        with EmbeddedFleet(2) as fleet:
            dispatcher = fleet.dispatcher(shard_key=lambda digest: 0)
            responses = serve_stream(dispatcher, stream, order_seed=3)
            assert_digest_identical(stream, responses, direct)
            assert set(dispatcher.counters.by_endpoint) \
                == {fleet.endpoints[0]}

    def test_repeats_are_shard_stable_cache_hits(self):
        stream = build_stream()
        direct = direct_digests(stream)
        with EmbeddedFleet(4) as fleet:
            dispatcher = fleet.dispatcher()
            serve_stream(dispatcher, stream)
            # Second pass: every request replays from its owner's cache.
            responses = serve_stream(dispatcher, stream)
            assert_digest_identical(stream, responses, direct)
            assert all(r["result"].get("cached") for r in responses)


class TestCachePeeking:
    def test_failover_peeks_peer_cache_instead_of_recomputing(self):
        request = EngagementRequest(w=W, z=Z, num_blocks=20)
        digest = request.digest()
        with EmbeddedFleet(3) as fleet:
            # Warm daemon 1's cache through a dispatcher that owns it
            # there, then route through a second dispatcher whose owner
            # (daemon 0) is dead: the failover path must find daemon
            # 1's cached answer via peek.
            warm = fleet.dispatcher(shard_key=lambda d: 1)
            direct = execute(request).digest()
            assert warm.request(request).digest() == direct
            fleet.clients[0].close()
            cold = fleet.dispatcher(shard_key=lambda d: 0)
            response = cold.submit(request)
            assert response["ok"]
            assert response["result"]["cached"] is True
            from repro.api import result_from_dict

            assert result_from_dict(response["result"]).digest() == direct
            assert cold.counters.peek_hits == 1
            assert cold.shard_of(digest) == 0
            assert fleet.endpoints[0] in cold.quarantined

    def test_peek_misses_fall_through_to_peer_compute(self):
        request = EngagementRequest(w=(3.5, 2.5, 4.5), z=Z, num_blocks=20)
        with EmbeddedFleet(2) as fleet:
            fleet.clients[0].close()
            dispatcher = fleet.dispatcher(shard_key=lambda d: 0)
            result = dispatcher.request(request)
            assert result.digest() == execute(request).digest()
            assert dispatcher.counters.peeks >= 1
            assert dispatcher.counters.peek_hits == 0
            assert dispatcher.counters.failovers == 1


class TestWorkerChaos:
    def test_poisoned_request_fails_alone_in_fleet(self):
        poison = one_shot_plan("fleet-poison", {"n": 1})
        stream = build_stream()[:6]
        direct = direct_digests(stream)
        with EmbeddedFleet(2) as fleet:
            dispatcher = fleet.dispatcher()
            poison_response = dispatcher.submit(poison)
            assert not poison_response["ok"]
            code = poison_response["error"]["code"]
            assert code == "worker-died"
            assert code not in RETRYABLE_CODES  # guilty, not unlucky
            # Both daemons still serve the clean stream correctly.
            responses = serve_stream(dispatcher, stream)
            assert_digest_identical(stream, responses, direct)
            assert dispatcher.counters.unavailable == 0


@pytest.mark.slow
class TestDaemonChaos:
    def test_sigkill_mid_stream_no_lost_or_wrong_answers(self):
        stream = build_stream()
        direct = direct_digests(stream)
        with LocalFleet(3, workers=1) as fleet:
            dispatcher = fleet.dispatcher(connect_timeout=5.0)
            victim = dispatcher.shard_of(stream[0].digest())
            responses = [None] * len(stream)
            started = threading.Event()

            def drain(slots):
                for slot in slots:
                    responses[slot] = dispatcher.submit(stream[slot])
                    started.set()

            slots = list(range(len(stream)))
            threads = [threading.Thread(target=drain, args=(slots[i::4],))
                       for i in range(4)]
            for t in threads:
                t.start()
            # Kill a daemon while the stream is genuinely in flight.
            started.wait(timeout=STREAM_TIMEOUT)
            fleet.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + STREAM_TIMEOUT
            for t in threads:
                t.join(timeout=max(0.1, deadline - time.monotonic()))
            assert not any(t.is_alive() for t in threads), \
                "a request hung after the daemon kill"

            retried = 0
            for slot, response in enumerate(responses):
                assert response is not None
                if not response.get("ok"):
                    # Lost to the kill — must be retryable, and the
                    # retry must succeed on a surviving peer.
                    assert response["error"]["code"] in RETRYABLE_CODES, \
                        response
                    response = dispatcher.submit(stream[slot])
                    assert response.get("ok"), response
                    retried += 1
                    responses[slot] = response
            assert_digest_identical(stream, responses, direct)
            assert fleet.endpoints[victim] in dispatcher.quarantined

            # Caches coherent after the chaos: a full replay off the
            # survivors is still digest-identical.
            replay = serve_stream(dispatcher, stream)
            assert_digest_identical(stream, replay, direct)
            health = dispatcher.check_health()
            assert not health[fleet.endpoints[victim]]
            assert sum(health.values()) == 2

    def test_graceful_drain_is_retryable_not_wrong(self):
        request = EngagementRequest(w=W, z=Z, num_blocks=20)
        with LocalFleet(2, workers=1) as fleet:
            dispatcher = fleet.dispatcher(connect_timeout=5.0)
            owner = dispatcher.shard_of(request.digest())
            # Drain the owner (graceful shutdown op): the dispatcher
            # must treat "shutting-down" as dead-and-move-on.
            from repro.service.tcp import send_envelope

            send_envelope(fleet.endpoints[owner],
                          {"id": 0, "op": "shutdown"}, timeout=10.0)
            fleet.processes[owner].wait(timeout=30)
            result = dispatcher.request(request)
            assert result.digest() == execute(request).digest()
