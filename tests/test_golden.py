"""Golden regression tests: exact reference values, derived by hand.

These pin the numerical identities of the reproduction to hand-derived
closed forms on tiny instances, so that any future refactor that
changes semantics (rather than just implementation) fails loudly with
numbers a human can re-derive on paper.
"""

import numpy as np
import pytest

from repro.core.dls_bl import DLSBL
from repro.core.payments import bonus, excluded_optimal_makespan
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.dlt.timing import finish_times, makespan


class TestHandDerivedAllocations:
    def test_cp_two_equal_processors(self):
        # w = (1, 1), z = 1:  alpha_1 w_1 = alpha_2 (z + w_2)
        # => alpha_1 = 2 alpha_2 => alpha = (2/3, 1/3)
        # T = z*(2/3) + (2/3)*1 = 4/3
        net = BusNetwork((1.0, 1.0), 1.0, NetworkKind.CP)
        a = allocate(net)
        assert a == pytest.approx([2 / 3, 1 / 3])
        assert makespan(a, net) == pytest.approx(4 / 3)

    def test_fe_two_equal_processors(self):
        # Same fractions as CP; T = alpha_1 w_1 = 2/3.
        net = BusNetwork((1.0, 1.0), 1.0, NetworkKind.NCP_FE)
        a = allocate(net)
        assert a == pytest.approx([2 / 3, 1 / 3])
        assert makespan(a, net) == pytest.approx(2 / 3)

    def test_nfe_two_equal_processors(self):
        # Eq (9): alpha_1 w_1 = alpha_2 w_2 => alpha = (1/2, 1/2)
        # T = z/2 + 1/2 = 3/4 at z = 1/2 (inside the regime z < w_2).
        net = BusNetwork((1.0, 1.0), 0.5, NetworkKind.NCP_NFE)
        a = allocate(net)
        assert a == pytest.approx([0.5, 0.5])
        assert makespan(a, net) == pytest.approx(0.75)

    def test_cp_three_processors_chain(self):
        # w = (1, 2, 3), z = 1:
        # k1 = 1/(1+2) = 1/3, k2 = 2/(1+3) = 1/2
        # weights (1, 1/3, 1/6); sum = 3/2  => alpha = (2/3, 2/9, 1/9)
        net = BusNetwork((1.0, 2.0, 3.0), 1.0, NetworkKind.CP)
        a = allocate(net)
        assert a == pytest.approx([2 / 3, 2 / 9, 1 / 9])
        T = finish_times(a, net)
        # T_1 = 2/3 + 2/3 = 4/3; all equal.
        assert T == pytest.approx([4 / 3] * 3)


class TestHandDerivedPayments:
    def test_cp_two_processors_truthful_payments(self):
        # w = (1, 1), z = 1, truthful run.
        # alpha = (2/3, 1/3); T = 4/3.
        # Without P1: single processor w=1: T_{-1} = z*1 + 1 = 2.
        # Without P2: T_{-2} = 2 as well (symmetric).
        # B_i = 2 - 4/3 = 2/3 for both.
        # C = alpha * w = (2/3, 1/3); Q = C + B = (4/3, 1).
        mech = DLSBL(NetworkKind.CP, 1.0)
        r = mech.truthful_run([1.0, 1.0])
        assert r.alpha == pytest.approx([2 / 3, 1 / 3])
        assert r.bonuses == pytest.approx([2 / 3, 2 / 3])
        assert r.payments == pytest.approx([4 / 3, 1.0])
        assert r.utilities == pytest.approx([2 / 3, 2 / 3])
        assert r.user_cost == pytest.approx(7 / 3)

    def test_exclusion_value_by_hand(self):
        net = BusNetwork((1.0, 1.0), 1.0, NetworkKind.CP)
        assert excluded_optimal_makespan(net, 0) == pytest.approx(2.0)
        assert excluded_optimal_makespan(net, 1) == pytest.approx(2.0)

    def test_fe_originator_exclusion_by_hand(self):
        # NCP-FE, w = (1, 1), z = 1.  Excluding the originator leaves a
        # CP distributor with one worker: T = z + w = 2.
        # Full FE optimum: T = 2/3.  Bonus of P1 = 2 - 2/3 = 4/3.
        net = BusNetwork((1.0, 1.0), 1.0, NetworkKind.NCP_FE)
        assert excluded_optimal_makespan(net, 0) == pytest.approx(2.0)
        assert bonus(net, 0, 1.0) == pytest.approx(4 / 3)

    def test_slow_execution_penalty_by_hand(self):
        # CP, w = (1, 1), z = 1; P2 executes at w~ = 2 (twice as slow).
        # Realized T = max(4/3, 1 + 1/3*2) = max(4/3, 5/3) = 5/3.
        # B_2 = 2 - 5/3 = 1/3 (down from 2/3 when honest).
        net = BusNetwork((1.0, 1.0), 1.0, NetworkKind.CP)
        assert bonus(net, 1, 2.0) == pytest.approx(1 / 3)


class TestReferenceInstance:
    """The benchmark suite's reference instance, frozen to 12 digits."""

    def test_reference_allocation(self):
        net = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.6, NetworkKind.NCP_FE)
        a = allocate(net)
        assert a == pytest.approx(
            [0.459416613824, 0.255231452124, 0.136731135067, 0.148620798985],
            abs=1e-11)
        assert makespan(a, net) == pytest.approx(0.918833227647, abs=1e-11)

    def test_reference_payments(self):
        r = DLSBL(NetworkKind.NCP_FE, 0.5).truthful_run([2.0, 3.0, 5.0, 4.0])
        assert r.user_cost == pytest.approx(4.24270659666, abs=1e-10)
        assert min(r.utilities) > 0
