"""Runner semantics: serial/sharded parity, failures, worker death.

The synthetic tasks registered here are inherited by worker processes
through the fork start method, which is what the runner uses on POSIX.
"""

import os

import pytest

from repro.sweep import (
    RunOptions,
    ScenarioSpec,
    SweepError,
    SweepPlan,
    run_plan,
)
from repro.sweep.tasks import register


@register("test-square")
def _square(spec: ScenarioSpec) -> dict:
    return {"i": spec.params["i"], "sq": spec.params["i"] ** 2,
            "seed": spec.seed}


@register("test-fail-at")
def _fail_at(spec: ScenarioSpec) -> dict:
    if spec.params["i"] == spec.params["fail"]:
        raise ValueError(f"boom at {spec.params['i']}")
    return {"i": spec.params["i"]}


@register("test-die-once")
def _die_once(spec: ScenarioSpec) -> dict:
    # Hard-kill the worker process the first time only: the sentinel
    # file records that the crash already happened, so the resubmitted
    # chunk completes.  os._exit bypasses cleanup — a real SIGKILL-ish
    # death, which is exactly what BrokenProcessPool recovery is for.
    sentinel = spec.params["sentinel"]
    if spec.params["i"] == 2 and not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("died")
        os._exit(1)
    return {"i": spec.params["i"]}


@register("test-die-always")
def _die_always(spec: ScenarioSpec) -> dict:
    os._exit(1)


def square_plan(n=10, root_seed=0):
    return SweepPlan.from_scenarios(
        "test-square", [{"i": i} for i in range(n)], root_seed=root_seed)


class TestSerial:
    def test_records_in_plan_order(self):
        result = run_plan(square_plan(6))
        assert [r["i"] for r in result.records] == list(range(6))
        assert result.workers == 1
        assert result.restarts == 0

    def test_progress_called_per_scenario(self):
        calls = []
        run_plan(square_plan(4), RunOptions(progress=lambda d, t: calls.append((d, t))))
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_failure_raises_sweep_error_with_index(self):
        plan = SweepPlan.from_scenarios(
            "test-fail-at", [{"i": i, "fail": 3} for i in range(6)])
        with pytest.raises(SweepError, match=r"scenario 3 .*boom at 3"):
            run_plan(plan)

    def test_unknown_task_fails(self):
        plan = SweepPlan.from_scenarios("no-such-task", [{}])
        with pytest.raises(SweepError, match="unknown sweep task"):
            run_plan(plan)

    def test_empty_plan(self):
        result = run_plan(SweepPlan.from_scenarios("test-square", []))
        assert result.records == ()


class TestSharded:
    def test_digest_matches_serial(self):
        serial = run_plan(square_plan(12))
        sharded = run_plan(square_plan(12), RunOptions(workers=2))
        assert sharded.records == serial.records
        assert sharded.digest() == serial.digest()
        assert sharded.workers == 2
        assert len(sharded.shards) > 1

    def test_shard_order_is_irrelevant(self):
        serial = run_plan(square_plan(8))
        scrambled = run_plan(square_plan(8), RunOptions(workers=2, chunk_size=2,
                             shard_order=[3, 1, 0, 2]))
        assert scrambled.records == serial.records
        assert scrambled.digest() == serial.digest()

    def test_bad_shard_order_rejected(self):
        with pytest.raises(ValueError, match="shard_order"):
            run_plan(square_plan(8), RunOptions(workers=2, chunk_size=2,
                     shard_order=[0, 0, 1, 2]))

    def test_chunking_covers_all_scenarios(self):
        result = run_plan(square_plan(7), RunOptions(workers=2, chunk_size=3))
        assert len(result.shards) == 3
        assert sum(s.scenarios for s in result.shards) == 7
        assert [r["sq"] for r in result.records] == [i * i for i in range(7)]

    def test_progress_reports_chunk_completions(self):
        calls = []
        run_plan(square_plan(8), RunOptions(workers=2, chunk_size=4,
                 progress=lambda d, t: calls.append((d, t))))
        assert calls[-1] == (8, 8)
        assert all(t == 8 for _, t in calls)

    def test_empty_plan_sharded(self):
        result = run_plan(SweepPlan.from_scenarios("test-square", []),
                          RunOptions(workers=4))
        assert result.records == ()
        assert result.shards == ()

    def test_scenario_failure_same_report_as_serial(self):
        plan = SweepPlan.from_scenarios(
            "test-fail-at", [{"i": i, "fail": 4} for i in range(8)])
        with pytest.raises(SweepError, match=r"scenario 4 .*boom at 4"):
            run_plan(plan, RunOptions(workers=2, chunk_size=2))

    def test_later_scenarios_still_ran_despite_failure(self):
        # Failures are captured per scenario, not per chunk: the lowest
        # failing index is reported even when it shares a chunk with
        # successes.
        plan = SweepPlan.from_scenarios(
            "test-fail-at", [{"i": i, "fail": 0} for i in range(4)])
        with pytest.raises(SweepError, match="scenario 0"):
            run_plan(plan, RunOptions(workers=2, chunk_size=4))


class TestWorkerDeath:
    def test_pool_rebuilt_and_chunks_resubmitted(self, tmp_path):
        sentinel = str(tmp_path / "died-once")
        plan = SweepPlan.from_scenarios(
            "test-die-once",
            [{"i": i, "sentinel": sentinel} for i in range(6)])
        result = run_plan(plan, RunOptions(workers=2, chunk_size=2))
        assert [r["i"] for r in result.records] == list(range(6))
        assert result.restarts >= 1
        assert os.path.exists(sentinel)

    def test_persistent_death_abandons_sweep(self):
        plan = SweepPlan.from_scenarios("test-die-always", [{"i": 0}])
        with pytest.raises(SweepError, match="pool died"):
            run_plan(plan, RunOptions(workers=2, max_restarts=1))


class TestResultShape:
    def test_to_dict_round_trips_through_json(self):
        import json

        result = run_plan(square_plan(5), RunOptions(workers=2, chunk_size=2))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["digest"] == result.digest()
        assert len(payload["records"]) == 5
        assert payload["workers"] == 2

    def test_shards_sorted_by_id(self):
        result = run_plan(square_plan(9), RunOptions(workers=2, chunk_size=3,
                          shard_order=[2, 0, 1]))
        assert [s.shard for s in result.shards] == [0, 1, 2]
