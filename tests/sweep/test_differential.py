"""Differential tests: sharded execution is indistinguishable from the
serial loop.

For each ported analysis sweep the merged record stream is hashed
(canonical JSON, SHA-256) and compared against the serial reference —
across worker counts and shuffled shard submission orders.  Digest
equality here is byte equality of everything the consumers read.
"""

import random

import pytest

from repro.analysis.resilience import crash_plan, drop_plan
from repro.analysis.sensitivity import condition_plan
from repro.analysis.strategyproofness import surface_plan
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.sweep import RunOptions, run_plan

W4 = (2.0, 3.0, 5.0, 4.0)
Z = 0.4

WORKER_COUNTS = (1, 2, 4, 8)


def reference_plans():
    """The ported sweeps, one small representative plan each."""
    net3 = BusNetwork((2.0, 3.0, 5.0), 0.4, NetworkKind.NCP_FE)
    surface = surface_plan(
        net3, 0, [0.8, 1.0, 1.2, 1.4], [1.0, 1.3, 1.6], root_seed=17)
    crashes, _ = crash_plan(W4, NetworkKind.NCP_FE, Z,
                            progresses=(0.25, 0.75), num_blocks=60)
    drops, _ = drop_plan(W4, NetworkKind.NCP_NFE, Z, rates=(0.0, 0.2),
                         seeds=range(2), num_blocks=60)
    condition = condition_plan(BusNetwork(W4, Z, NetworkKind.NCP_NFE))
    return {"strategyproofness": surface, "resilience-crash": crashes,
            "resilience-drop": drops, "sensitivity": condition}


@pytest.fixture(scope="module")
def plans():
    return reference_plans()


@pytest.fixture(scope="module")
def serial(plans):
    return {name: run_plan(plan) for name, plan in plans.items()}


@pytest.mark.parametrize("name", ["strategyproofness", "resilience-crash",
                                  "resilience-drop", "sensitivity"])
class TestShardedEqualsSerial:
    @pytest.mark.parametrize("workers", [w for w in WORKER_COUNTS if w > 1])
    def test_any_worker_count(self, plans, serial, name, workers):
        sharded = run_plan(plans[name], RunOptions(workers=workers))
        assert sharded.records == serial[name].records
        assert sharded.digest() == serial[name].digest()

    def test_shuffled_shard_order(self, plans, serial, name):
        plan = plans[name]
        chunk_size = 2
        n_chunks = -(-len(plan) // chunk_size)
        order = list(range(n_chunks))
        random.Random(name).shuffle(order)
        sharded = run_plan(plan, RunOptions(workers=2, chunk_size=chunk_size,
                           shard_order=order))
        assert sharded.records == serial[name].records
        assert sharded.digest() == serial[name].digest()

    def test_single_scenario_chunks(self, plans, serial, name):
        # The finest sharding: every scenario its own chunk, reversed
        # submission order — the adversarial extreme of the contract.
        plan = plans[name]
        order = list(reversed(range(len(plan))))
        sharded = run_plan(plan, RunOptions(workers=2, chunk_size=1, shard_order=order))
        assert sharded.digest() == serial[name].digest()


class TestAggregatesMatch:
    def test_traffic_totals_worker_invariant(self, plans, serial):
        ref = serial["resilience-crash"].traffic.to_dict()
        sharded = run_plan(plans["resilience-crash"], RunOptions(workers=4))
        assert sharded.traffic.to_dict() == ref

    def test_phase_totals_worker_invariant(self, plans, serial):
        ref = serial["resilience-drop"].phases.to_dict()
        sharded = run_plan(plans["resilience-drop"], RunOptions(workers=2))
        assert sharded.phases.to_dict() == ref


class TestConsumersHonorWorkers:
    """The public analysis entry points give identical answers with a pool."""

    def test_utility_surface(self):
        import numpy as np

        from repro.analysis.strategyproofness import utility_surface

        net = BusNetwork((2.0, 3.0, 5.0), 0.4, NetworkKind.NCP_FE)
        bid, ex = [0.9, 1.0, 1.1], [1.0, 1.5]
        a = utility_surface(net, 1, bid, ex)
        b = utility_surface(net, 1, bid, ex, workers=2)
        assert np.array_equal(a, b)

    def test_crash_sweep(self):
        from repro.analysis.resilience import crash_sweep

        kw = dict(progresses=(0.5,), num_blocks=60)
        assert (crash_sweep(W4, NetworkKind.NCP_FE, Z, **kw)
                == crash_sweep(W4, NetworkKind.NCP_FE, Z, workers=2, **kw))

    def test_drop_sweep(self):
        from repro.analysis.resilience import drop_sweep

        kw = dict(rates=(0.0, 0.2), seeds=range(2), num_blocks=60)
        assert (drop_sweep(W4, NetworkKind.NCP_FE, Z, **kw)
                == drop_sweep(W4, NetworkKind.NCP_FE, Z, workers=2, **kw))

    def test_worst_case_condition(self):
        from repro.analysis.sensitivity import worst_case_condition

        net = BusNetwork(W4, Z, NetworkKind.NCP_FE)
        assert (worst_case_condition(net)
                == worst_case_condition(net, workers=2))
