"""Specs, plans, and the seed-derivation contract."""

import math

import pytest

from repro.sweep import (
    PLAN_FORMAT,
    ScenarioSpec,
    SweepPlan,
    canonical_json,
    derive_seed,
    digest_records,
)


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        s = canonical_json({"a": [1, 2], "b": {"c": 3}})
        assert " " not in s and "\n" not in s

    def test_float_repr_exact(self):
        # json uses float.__repr__: the shortest round-trip encoding.
        assert canonical_json(0.1) == "0.1"
        assert canonical_json(1 / 3) == repr(1 / 3)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_infinity_rejected(self):
        with pytest.raises(ValueError):
            canonical_json([math.inf])


class TestDigestRecords:
    def test_order_sensitive(self):
        a = [{"i": 0}, {"i": 1}]
        assert digest_records(a) != digest_records(list(reversed(a)))

    def test_stable(self):
        recs = [{"u": 0.25, "v": [1, 2]}] * 3
        assert digest_records(recs) == digest_records(recs)

    def test_concatenation_unambiguous(self):
        # Two records must never hash like one merged record.
        assert digest_records([{"a": 1}, {"b": 2}]) != digest_records(
            [{"a": 1, "b": 2}])


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "t", "k") == derive_seed(7, "t", "k")

    def test_distinct_across_inputs(self):
        seeds = {derive_seed(r, t, k)
                 for r in (0, 1) for t in ("a", "b") for k in ("x", "y")}
        assert len(seeds) == 8

    def test_nonnegative_63_bit(self):
        for k in range(50):
            s = derive_seed(1, "task", str(k))
            assert 0 <= s < 2 ** 63

    def test_known_value_pinned(self):
        # Canary: a silent change to the derivation would invalidate
        # every recorded sweep digest.  Update deliberately or never.
        assert derive_seed(0, "protocol", "{}") == 1360206340581844695


class TestPlanConstruction:
    def test_from_scenarios_preserves_order(self):
        plan = SweepPlan.from_scenarios(
            "t", [{"i": 2}, {"i": 0}, {"i": 1}], root_seed=3)
        assert [s.params["i"] for s in plan] == [2, 0, 1]
        assert [s.index for s in plan] == [0, 1, 2]

    def test_from_tasks_heterogeneous(self):
        plan = SweepPlan.from_tasks(
            [("base", {"x": 1}), ("faulty", {"x": 1, "r": 0.1})])
        assert [s.task for s in plan] == ["base", "faulty"]

    def test_grid_row_major_last_axis_fastest(self):
        plan = SweepPlan.from_grid(
            "t", {"c": 9}, {"a": [1, 2], "b": [10, 20, 30]})
        combos = [(s.params["a"], s.params["b"]) for s in plan]
        assert combos == [(1, 10), (1, 20), (1, 30),
                          (2, 10), (2, 20), (2, 30)]
        assert all(s.params["c"] == 9 for s in plan)

    def test_seed_position_independent(self):
        # The same (task, params) gets the same seed wherever it sits.
        a = SweepPlan.from_scenarios("t", [{"i": 0}, {"i": 1}], root_seed=5)
        b = SweepPlan.from_scenarios("t", [{"i": 1}, {"i": 0}], root_seed=5)
        by_key_a = {s.key: s.seed for s in a}
        by_key_b = {s.key: s.seed for s in b}
        assert by_key_a == by_key_b

    def test_root_seed_changes_every_seed(self):
        a = SweepPlan.from_scenarios("t", [{"i": 0}], root_seed=1)
        b = SweepPlan.from_scenarios("t", [{"i": 0}], root_seed=2)
        assert a.scenarios[0].seed != b.scenarios[0].seed

    def test_specs_are_frozen(self):
        spec = SweepPlan.from_scenarios("t", [{"i": 0}]).scenarios[0]
        assert isinstance(spec, ScenarioSpec)
        with pytest.raises(AttributeError):
            spec.index = 5


class TestPlanSerialization:
    def test_file_round_trip(self, tmp_path):
        plan = SweepPlan.from_grid(
            "protocol", {"w": [2.0, 3.0], "z": 0.4, "kind": "ncp-fe"},
            {"drop_rate": [0.0, 0.1]}, root_seed=11)
        path = tmp_path / "plan.json"
        plan.to_file(path)
        loaded = SweepPlan.from_file(path)
        assert loaded == plan
        assert loaded.digest() == plan.digest()

    def test_to_dict_declares_format(self):
        assert SweepPlan.from_scenarios("t", []).to_dict()["format"] == PLAN_FORMAT

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            SweepPlan.from_dict({"format": "something/else", "scenarios": []})

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            SweepPlan.from_dict({"format": PLAN_FORMAT,
                                 "scenarios": [{"params": {}}]})

    def test_digest_covers_params(self):
        a = SweepPlan.from_scenarios("t", [{"i": 0}])
        b = SweepPlan.from_scenarios("t", [{"i": 1}])
        assert a.digest() != b.digest()
