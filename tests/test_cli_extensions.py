"""Tests for the extension CLI subcommands (star/chain/affine/regime,
protocol --trace/--json)."""

import json

import pytest

from repro.cli import main


class TestStarCommand:
    def test_runs(self, capsys):
        assert main(["star", "--links", "0.3", "0.6", "0.4",
                     "--bids", "2", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "DLS-ST" in out and "user cost" in out

    def test_length_mismatch(self, capsys):
        assert main(["star", "--links", "0.3", "--bids", "2", "3"]) == 2
        assert "error" in capsys.readouterr().err


class TestChainCommand:
    def test_runs(self, capsys):
        assert main(["chain", "--hops", "0.1", "0.2",
                     "--bids", "2", "3", "5"]) == 0
        assert "DLS-LN" in capsys.readouterr().out

    def test_hop_count_mismatch(self, capsys):
        assert main(["chain", "--hops", "0.1", "--bids", "2", "3", "5"]) == 2


class TestAffineCommand:
    def test_reports_cohort(self, capsys):
        assert main(["affine", "--z", "0.2", "--sc", "0.3", "--sp", "0.1",
                     "--load", "0.5", "1", "1", "1", "1", "1", "1"]) == 0
        out = capsys.readouterr().out
        assert "optimal cohort" in out

    def test_zero_overheads_full_cohort(self, capsys):
        assert main(["affine", "--z", "0.2", "1", "1", "1"]) == 0
        assert "cohort 3/3" in capsys.readouterr().out


class TestRegimeCommand:
    def test_in_regime_exit_zero(self, capsys):
        assert main(["regime", "--kind", "ncp-nfe", "--z", "0.5",
                     "2", "3", "5"]) == 0
        assert "True" in capsys.readouterr().out

    def test_out_of_regime_exit_one(self, capsys):
        assert main(["regime", "--kind", "ncp-nfe", "--z", "2.0",
                     "1", "1"]) == 1
        out = capsys.readouterr().out
        assert "False" in out

    def test_cp_always_passes(self):
        assert main(["regime", "--kind", "cp", "--z", "9.0", "1", "1"]) == 0


class TestConsoleScript:
    def test_repro_command_installed(self):
        import shutil
        import subprocess

        exe = shutil.which("repro")
        if exe is None:
            pytest.skip("console script not on PATH in this environment")
        r = subprocess.run([exe, "survey", "--z", "0.5", "2", "3"],
                           capture_output=True, text=True)
        assert r.returncode == 0
        assert "ncp-fe" in r.stdout

    def test_bidding_mode_flag(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "--bidding-mode", "commit",
                   "--deviant", "1:split-bids"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TERMINATED in phase BIDDING" in out

    def test_split_bids_harmless_under_atomic(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "--deviant", "1:split-bids"])
        assert rc == 0


class TestProtocolFlags:
    def test_trace_prints_transcript(self, capsys):
        assert main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "transcript" in out
        assert "payment-vector" in out
        assert "Bus traffic" in out
        assert "Per-phase trace spans" in out

    def test_trace_json_to_stdout(self, capsys):
        assert main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "--trace-json"]) == 0
        out = capsys.readouterr().out
        # The spans document prints first, the outcome tables after it.
        doc, _ = json.JSONDecoder().raw_decode(out)
        assert doc["format"] == "repro/protocol-trace/v1"
        assert [s["phase"] for s in doc["spans"]] == [
            "BIDDING", "ALLOCATING_LOAD", "PROCESSING_LOAD",
            "COMPUTING_PAYMENTS"]

    def test_trace_json_to_file(self, tmp_path):
        target = tmp_path / "spans.json"
        assert main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "--trace-json", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert doc["format"] == "repro/protocol-trace/v1"
        assert len(doc["spans"]) == 4
        assert all(s["messages"] >= 0 for s in doc["spans"])

    def test_json_output_parses(self, capsys):
        assert main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["completed"] is True
        assert data["format"] == "repro/protocol-result/v1"

    def test_json_exit_code_tracks_completion(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "--deviant", "1:multiple-bids", "--json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["completed"] is False


class TestCommitteeFlags:
    def test_committee_run_reports_quorum(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "4", "--committee", "4",
                   "--deviant", "1:multiple-bids"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "P2 fined" in out

    def test_byzantine_member_changes_nothing(self, capsys):
        base = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                     "2", "3", "5", "4", "--committee", "4",
                     "--deviant", "1:multiple-bids", "--json"])
        honest = json.loads(capsys.readouterr().out)
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "4", "--committee", "4",
                   "--byzantine", "1", "--byzantine-mode", "fine-steal",
                   "--deviant", "1:multiple-bids", "--json"])
        faulty = json.loads(capsys.readouterr().out)
        assert rc == base == 1
        assert faulty["balances"] == honest["balances"]
        assert faulty["verdicts"] == honest["verdicts"]

    def test_too_many_byzantine_rejected(self, capsys):
        # N = 4 tolerates f = 1; asking for 2 is a usage error.
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "4", "--committee", "4",
                   "--byzantine", "2"])
        assert rc == 2

    def test_byzantine_without_committee_rejected(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "--byzantine", "1"])
        assert rc == 2


class TestCallUnreachableSocket:
    def test_missing_socket_exits_2_with_hint(self, tmp_path, capsys):
        sock = tmp_path / "nowhere.sock"
        rc = main(["call", "--socket", str(sock), "--op", "ping"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith(f"error: cannot reach service at {str(sock)!r}")
        assert "repro serve --socket" in err

    def test_stale_socket_file_exits_2(self, tmp_path, capsys):
        # A socket file nobody is listening on (daemon died) is the
        # same usage error as a missing one.
        import socket as socketlib

        sock = tmp_path / "stale.sock"
        srv = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        srv.bind(str(sock))
        srv.close()  # file remains, listener gone
        rc = main(["call", "--socket", str(sock), "--op", "ping"])
        assert rc == 2
        assert "cannot reach service" in capsys.readouterr().err

    def test_refused_tcp_port_exits_2_with_tcp_hint(self, capsys):
        import socket as socketlib

        # Reserve a port the kernel just released: connecting to it is
        # refused immediately, no timeout involved.
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["call", "--tcp", f"127.0.0.1:{port}", "--op", "ping"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith(
            f"error: cannot reach service at '127.0.0.1:{port}'")
        assert f"repro serve --tcp 127.0.0.1:{port}" in err

    def test_tcp_connect_timeout_bounds_the_wait(self, capsys):
        import socket as socketlib
        import time

        # A listener that never accepts, with its backlog already full:
        # the connect phase must give up after --connect-timeout, not
        # sit out the 300 s I/O budget.
        srv = socketlib.socket()
        try:
            srv.bind(("127.0.0.1", 0))
            srv.listen(0)
            port = srv.getsockname()[1]
            fillers = []
            for _ in range(8):  # saturate the accept queue
                filler = socketlib.socket()
                filler.settimeout(0.2)
                try:
                    filler.connect(("127.0.0.1", port))
                except OSError:
                    filler.close()
                    break
                fillers.append(filler)
            start = time.monotonic()
            rc = main(["call", "--tcp", f"127.0.0.1:{port}",
                       "--op", "ping", "--connect-timeout", "0.5"])
            elapsed = time.monotonic() - start
        finally:
            for filler in fillers:
                filler.close()
            srv.close()
        assert rc == 2
        assert elapsed < 10.0
        assert "cannot reach service" in capsys.readouterr().err
