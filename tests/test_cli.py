"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestAllocate:
    def test_prints_table(self, capsys):
        assert main(["allocate", "--kind", "ncp-fe", "--z", "0.5",
                     "2", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "alpha_i" in out
        assert "P3" in out

    def test_default_kind(self, capsys):
        assert main(["allocate", "--z", "0.5", "2", "3"]) == 0
        assert "ncp-fe" in capsys.readouterr().out

    def test_bad_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["allocate", "--kind", "mesh",
                                       "--z", "0.5", "2"])

    def test_bad_w_reports_error(self, capsys):
        rc = main(["allocate", "--z", "0.5", "2", "-3"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSchedule:
    def test_renders_gantt(self, capsys):
        assert main(["schedule", "--kind", "cp", "--z", "0.6",
                     "2", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "bus" in out
        assert "#" in out and "=" in out


class TestMechanism:
    def test_truthful_round(self, capsys):
        assert main(["mechanism", "--kind", "cp", "--z", "0.5",
                     "--bids", "2", "3", "5"]) == 0
        out = capsys.readouterr().out
        assert "Q_i" in out and "user cost" in out

    def test_exec_override(self, capsys):
        assert main(["mechanism", "--kind", "cp", "--z", "0.5",
                     "--bids", "2", "3", "--exec", "2", "6"]) == 0
        assert "U_i" in capsys.readouterr().out

    def test_exec_length_mismatch(self, capsys):
        rc = main(["mechanism", "--kind", "cp", "--z", "0.5",
                   "--bids", "2", "3", "--exec", "2"])
        assert rc == 2


class TestProtocol:
    def test_honest_run_exit_zero(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "COMPLETED" in out
        assert "no fines" in out

    def test_deviant_run_exit_one(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "5", "--deviant", "1:multiple-bids"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TERMINATED" in out
        assert "P2 fined" in out

    def test_cp_rejected(self, capsys):
        rc = main(["protocol", "--kind", "cp", "--z", "0.4", "2", "3"])
        assert rc == 2

    def test_bad_deviant_index(self, capsys):
        rc = main(["protocol", "--kind", "ncp-fe", "--z", "0.4",
                   "2", "3", "--deviant", "7:multiple-bids"])
        assert rc == 2

    def test_bad_deviant_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["protocol", "--z", "0.4", "2", "3",
                                       "--deviant", "1:nonsense"])


class TestContend:
    def test_two_engagements_verify_exit_zero(self, capsys):
        rc = main(["contend", "--z", "0.4", "2", "3", "5",
                   "--engagements", "2", "--policy", "sjf", "--verify"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "E1" in out and "E2" in out
        assert "matches serial reference" in out
        assert "mean flow time" in out

    def test_json_emits_result_payload(self, capsys):
        import json

        rc = main(["contend", "--z", "0.4", "2", "3",
                   "--engagements", "2", "--policy", "rr", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["type"] == "multi-engagement-result"
        assert doc["policy"] == "rr"
        assert set(doc["outcomes"]) == {"E1", "E2"}

    def test_bad_engagement_count_is_usage_error(self, capsys):
        rc = main(["contend", "--z", "0.4", "2", "3",
                   "--engagements", "0"])
        assert rc == 2
        assert "engagements" in capsys.readouterr().err


class TestSurvey:
    def test_ranks_kinds(self, capsys):
        assert main(["survey", "--z", "0.5", "2", "3", "5"]) == 0
        out = capsys.readouterr().out
        for kind in ("cp", "ncp-fe", "ncp-nfe"):
            assert kind in out


class TestModuleEntry:
    def test_python_dash_m(self):
        import subprocess
        import sys

        r = subprocess.run(
            [sys.executable, "-m", "repro", "allocate", "--z", "0.5", "2", "3"],
            capture_output=True, text=True)
        assert r.returncode == 0
        assert "alpha_i" in r.stdout
