"""Import-layering lint: the dependency rules the refactor established.

The codebase is layered bottom-up:

    repro.dlt / repro.core        (mechanism math + referee logic)
        ^ must not import from
    repro.network / repro.agents / repro.protocol   (simulation stack)

and inside the protocol package:

    repro.protocol.runners        (phase logic)
        ^ must not import
    repro.agents internals        (runners talk to agents only through
                                   the methods the context hands them)

The lint walks every module's AST — including imports nested inside
functions (lazy imports count: they are still a runtime dependency) —
and skips only ``if TYPE_CHECKING:`` blocks, which express annotations,
not dependencies.  ``repro.core.dls_bl_ncp`` is the one sanctioned
exception: it is the user-facing facade that *assembles* the protocol
stack, documented as such in DESIGN.md.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# Modules in these packages must not import from these targets.
LOWER_LAYERS = ("repro.dlt", "repro.core")
UPPER_TARGETS = ("repro.protocol", "repro.network", "repro.agents")

# Sanctioned facade: assembles agents + engine for users of the core API.
ALLOWED = {"repro.core.dls_bl_ncp"}

RUNNERS_PKG = "repro.protocol.runners"
AGENT_INTERNALS = ("repro.agents",)


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC.parent).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking_block(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _imports(tree: ast.Module):
    """Yield imported module names, skipping TYPE_CHECKING blocks."""

    def walk(body):
        for node in body:
            if isinstance(node, ast.If) and _is_type_checking_block(node):
                yield from walk(node.orelse)
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    yield node.module
            for child_body in (
                getattr(node, "body", None),
                getattr(node, "orelse", None),
                getattr(node, "finalbody", None),
                getattr(node, "handlers", None),
            ):
                if child_body and not (isinstance(node, ast.If)
                                       and child_body is node.body
                                       and _is_type_checking_block(node)):
                    items = []
                    for item in child_body:
                        if isinstance(item, ast.ExceptHandler):
                            items.extend(item.body)
                        else:
                            items.append(item)
                    yield from walk(items)

    yield from walk(tree.body)


def _violations(layer_prefixes, forbidden_prefixes, allowed=frozenset()):
    out = []
    for path in sorted(SRC.rglob("*.py")):
        mod = _module_name(path)
        if not mod.startswith(tuple(p + "." for p in layer_prefixes)) \
                and mod not in layer_prefixes:
            continue
        if mod in allowed:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in _imports(tree):
            if imported.startswith(tuple(p + "." for p in forbidden_prefixes)) \
                    or imported in forbidden_prefixes:
                out.append(f"{mod} imports {imported}")
    return out


def test_core_and_dlt_do_not_import_simulation_stack():
    bad = _violations(LOWER_LAYERS, UPPER_TARGETS, allowed=ALLOWED)
    assert not bad, (
        "mechanism layers must not depend on the simulation stack:\n  "
        + "\n  ".join(bad))


def test_runners_do_not_import_agent_internals():
    bad = _violations((RUNNERS_PKG,), AGENT_INTERNALS)
    assert not bad, (
        "phase runners must reach agents only through the context:\n  "
        + "\n  ".join(bad))


def test_api_does_not_import_service():
    # repro.api is the wire contract; repro.service is one consumer of
    # it.  The dependency is strictly one-way (service -> api), so the
    # facade stays importable in environments with no asyncio daemon.
    bad = _violations(("repro.api",), ("repro.service",))
    assert not bad, (
        "repro.api must not depend on repro.service:\n  " + "\n  ".join(bad))


def test_cli_imports_analysis_only_through_facade():
    # The CLI is a thin client of repro.api; reaching into the analysis
    # package directly bypasses the versioned surface.  (The sanctioned
    # re-export module repro.api.analysis does not match this prefix.)
    bad = _violations(("repro.cli",), ("repro.analysis",))
    assert not bad, (
        "repro.cli must reach analysis code via repro.api.analysis:\n  "
        + "\n  ".join(bad))


def test_kernels_import_only_numpy_and_dlt():
    # repro.kernels sits at the bottom of the stack next to repro.dlt:
    # batch kernels may use numpy and the dlt types/oracles they mirror,
    # nothing above (no core, no sweep, no analysis) — otherwise the
    # "sweep reaches kernels, kernels never reach back" cycle guarantee
    # dies.  Stdlib modules are fine; anything repro.* outside dlt and
    # the package itself is a violation.
    allowed_prefixes = ("numpy", "repro.dlt", "repro.kernels")
    bad = []
    for path in sorted((SRC / "kernels").rglob("*.py")):
        mod = _module_name(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in _imports(tree):
            if imported.startswith("repro.") or imported == "repro":
                if not imported.startswith(allowed_prefixes):
                    bad.append(f"{mod} imports {imported}")
            elif not (imported.startswith(allowed_prefixes)
                      or imported.split(".")[0] in
                      ("__future__", "typing", "math", "itertools",
                       "functools", "dataclasses")):
                bad.append(f"{mod} imports {imported}")
    assert not bad, (
        "repro.kernels may import numpy, the stdlib and repro.dlt only:\n  "
        + "\n  ".join(bad))


def test_simulation_stack_does_not_import_kernels_directly():
    # The batch kernels are plumbed in at exactly two places: the
    # computation-cache layer (repro.perf.cache via
    # repro.core.fast_exclusion) and the sweep batch task registry
    # (repro.sweep.tasks).  Protocol runners, transports, agents, the
    # service daemon, the wire facade and the CLI must keep reaching the
    # math through those layers — a direct import would bypass the
    # cache's memoization and the digest-pinned task contract.
    bad = _violations(
        ("repro.protocol", "repro.network", "repro.agents",
         "repro.service", "repro.api", "repro.cli"),
        ("repro.kernels",))
    assert not bad, (
        "simulation/service layers must reach batch kernels through the "
        "cache layer or the sweep task registry, never directly:\n  "
        + "\n  ".join(bad))


def test_arbiter_sits_above_runners_and_below_service():
    # The bus-window arbiter schedules whole engagements: it may drive
    # the engine's session seam (and, lazily, the dls_bl_ncp facade that
    # assembles one), but it must never reach up into the serving stack
    # — the api/service layers call *it*, not the reverse.
    bad = _violations(("repro.protocol.arbiter",),
                      ("repro.service", "repro.api", "repro.cli"))
    assert not bad, (
        "repro.protocol.arbiter must stay below the api/service/cli "
        "layers:\n  " + "\n  ".join(bad))


def test_lower_layers_do_not_import_the_arbiter():
    # Phase runners, transports and agents are *scheduled by* the
    # arbiter; an upward import would collapse the scheduling seam
    # (and reintroduce the one-engagement-owns-the-bus assumption as a
    # hidden cycle).
    bad = _violations(
        ("repro.protocol.runners", "repro.network", "repro.agents"),
        ("repro.protocol.arbiter",))
    assert not bad, (
        "runners/network/agents must not depend on the arbiter:\n  "
        + "\n  ".join(bad))


def test_fleet_and_loadgen_stay_above_the_engine():
    # The fleet dispatcher is pure orchestration: digests, envelopes
    # and endpoints.  It may drive daemons (repro.service.daemon /
    # client / tcp) and speak the wire contract (repro.api), but it
    # must never compute — reaching protocol, kernels or the engine
    # layers directly would let a dispatcher answer produce a digest
    # the daemons it shards over could not.  The load generator is in
    # the same position: it *emits* requests (api types, sweep specs)
    # and digests responses; it never evaluates mechanisms itself.
    bad = _violations(
        ("repro.service.fleet", "repro.service.loadgen"),
        ("repro.protocol", "repro.kernels", "repro.network",
         "repro.agents", "repro.core", "repro.dlt"))
    assert not bad, (
        "fleet/loadgen must orchestrate, never compute:\n  "
        + "\n  ".join(bad))


def test_market_orchestrates_but_never_computes():
    # The market simulator is in the fleet/loadgen position one level
    # up: it composes api requests, drives the generic DES kernel and
    # folds records through the sweep digest helpers, and that is all.
    # Importing protocol, kernels, agents, engine layers or the serving
    # stack directly would let a market round settle differently from
    # the same round served through a daemon — the topology-invariance
    # contract the soak tier pins.  Within repro.network only the
    # generic events kernel is sanctioned (the shared DES clock);
    # transports and bus models stay behind the api executors.
    bad = _violations(
        ("repro.market",),
        ("repro.protocol", "repro.kernels", "repro.agents",
         "repro.core", "repro.dlt", "repro.service"))
    for path in sorted((SRC / "market").rglob("*.py")):
        mod = _module_name(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in _imports(tree):
            if (imported.startswith("repro.network")
                    and imported != "repro.network.events"):
                bad.append(f"{mod} imports {imported}")
    assert not bad, (
        "repro.market must orchestrate through repro.api and the DES "
        "kernel, never compute:\n  " + "\n  ".join(bad))


def test_tcp_is_the_only_socket_seam_in_the_service():
    # Every socket the service stack opens lives in repro.service.tcp:
    # transports multiply (unix, tcp, someday TLS) but the daemon,
    # client, fleet and pool handle Endpoint values and envelopes only.
    # An `import socket` anywhere else in the package is a new seam the
    # fleet's failover semantics (connect refused vs hang) don't cover.
    bad = []
    for path in sorted((SRC / "service").rglob("*.py")):
        mod = _module_name(path)
        if mod == "repro.service.tcp":
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in _imports(tree):
            if imported == "socket" or imported.startswith("socket."):
                bad.append(f"{mod} imports {imported}")
    assert not bad, (
        "repro.service.tcp is the only module in the service package "
        "that may touch the socket layer:\n  " + "\n  ".join(bad))


def test_facade_allowlist_is_not_stale():
    # If the facade stops importing the protocol stack, shrink ALLOWED.
    for mod in ALLOWED:
        path = SRC.parent / (mod.replace(".", "/") + ".py")
        assert path.exists(), f"allowlisted module {mod} no longer exists"
        tree = ast.parse(path.read_text(), filename=str(path))
        assert any(
            imported.startswith(UPPER_TARGETS) for imported in _imports(tree)
        ), f"{mod} no longer needs its allowlist entry — remove it"
