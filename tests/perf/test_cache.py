"""Unit tests for the repro.perf caches."""

import json

import numpy as np
import pytest

from repro.crypto.signatures import SigningKey, canonical_bytes
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.perf import ComputationCache, SignatureCache


def net(w=(2.0, 3.0, 5.0), z=0.4, kind=NetworkKind.NCP_FE):
    return BusNetwork(tuple(w), z, kind)


class TestComputationCache:
    def test_allocation_miss_then_hit(self):
        memo = ComputationCache()
        n = net()
        a1 = memo.allocation(n)
        a2 = memo.allocation(n)
        assert a1 is a2
        assert memo.stats.misses == 1 and memo.stats.hits == 1
        np.testing.assert_allclose(a1, allocate(n))

    def test_results_are_read_only(self):
        memo = ComputationCache()
        arr = memo.allocation(net())
        with pytest.raises(ValueError):
            arr[0] = 0.5

    def test_distinct_instances_key_separately(self):
        # A divergent bid view must miss — memoization can never hand
        # an agent a result for a profile it does not hold.
        memo = ComputationCache()
        memo.allocation(net((2.0, 3.0, 5.0)))
        memo.allocation(net((2.0, 3.0, 5.000001)))
        assert memo.stats.misses == 2

    def test_payments_keyed_by_exec_values_too(self):
        memo = ComputationCache()
        n = net()
        memo.payments(n, np.array([2.0, 3.0, 5.0]))
        memo.payments(n, np.array([2.5, 3.0, 5.0]))
        memo.payments(n, np.array([2.0, 3.0, 5.0]))
        assert memo.stats.misses == 2 and memo.stats.hits == 1

    def test_network_interning(self):
        memo = ComputationCache()
        names = ("P1", "P2", "P3")
        a = memo.network((2.0, 3.0, 5.0), 0.4, NetworkKind.NCP_FE, names)
        b = memo.network((2.0, 3.0, 5.0), 0.4, NetworkKind.NCP_FE, names)
        c = memo.network((2.0, 3.0, 5.0), 0.5, NetworkKind.NCP_FE, names)
        assert a is b and a is not c
        assert memo.stats.lookups == 0  # plumbing, not mechanism work

    def test_hit_rate(self):
        memo = ComputationCache()
        assert memo.stats.hit_rate == 0.0
        n = net()
        memo.allocation(n)
        memo.allocation(n)
        assert memo.stats.hit_rate == 0.5


class TestPaymentsPayloadCache:
    def test_q_list_matches_independent_computation(self):
        from repro.core.payments import payments as compute_payments

        memo = ComputationCache()
        n = net()
        w_exec = np.array([2.0, 3.1, 5.0])
        q_list, q_json = memo.payments_payload(n, w_exec)
        assert q_list == [float(x) for x in compute_payments(n, w_exec)]
        assert json.loads(q_json) == q_list

    def test_composed_canonical_matches_canonical_bytes(self):
        # The payment fast path splices the cached Q fragment into the
        # signed payload's canonical form by string composition; it
        # must be byte-identical to the full serialization for every
        # name and every float shape (exponents included).
        memo = ComputationCache()
        n = net((1e-7, 3.0, 5e8), z=0.125)
        q_list, q_json = memo.payments_payload(n, np.array([1e-7, 3.0, 5e8]))
        for name in ("P1", "processor \"x\"", "émile"):
            payload = {"processor": name, "Q": q_list}
            composed = ('{"Q":%s,"processor":%s}'
                        % (q_json, json.dumps(name))).encode()
            assert composed == canonical_bytes(payload)

    def test_signing_with_composed_canonical_verifies(self):
        from repro.crypto.pki import PKI

        pki = PKI()
        key = pki.register("P1")
        memo = ComputationCache()
        q_list, q_json = memo.payments_payload(net(), np.array([2.0, 3.0, 5.0]))
        payload = {"processor": "P1", "Q": q_list}
        canon = ('{"Q":%s,"processor":%s}'
                 % (q_json, json.dumps("P1"))).encode()
        sm = key.sign(payload, canonical=canon)
        assert pki.verify(sm)
        assert sm.canonical == canonical_bytes(payload)

    def test_payload_shared_across_calls(self):
        memo = ComputationCache()
        n = net()
        w_exec = np.array([2.0, 3.0, 5.0])
        first = memo.payments_payload(n, w_exec)
        second = memo.payments_payload(n, w_exec)
        assert first[0] is second[0] and first[1] is second[1]


class TestSignatureCache:
    def test_hit_miss_accounting(self):
        cache = SignatureCache()
        key = SigningKey("P1")
        sm = key.sign({"bid": 2.0})
        assert cache.verify(key, sm)
        assert cache.verify(key, sm)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert len(cache) == 1

    def test_invalidate_per_signer(self):
        cache = SignatureCache()
        k1, k2 = SigningKey("P1"), SigningKey("P2")
        a, b = k1.sign({"x": 1}), k2.sign({"y": 2})
        cache.verify(k1, a)
        cache.verify(k2, b)
        cache.invalidate("P1")
        assert len(cache) == 1
        cache.verify(k1, a)             # recomputed
        assert cache.stats.misses == 3
