"""Memoized and independent redundancy modes are observationally equal.

The acceptance property of the perf layer: with a seeded PKI, a run
with ``redundancy="memoized"`` and a run with
``redundancy="independent"`` must be *byte-identical* on the wire (same
message log, same canonical payloads, same signatures) and must settle
identically (payments, balances, phi, fines, verdicts).  Memoization
may only remove repeated work — never change a single observable bit.
"""

import numpy as np
import pytest

from repro.agents.behaviors import AgentBehavior, Deviation
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import NetworkKind
from repro.network.faults import CrashFault, FaultPlan, MessageFault
from repro.protocol.phases import Phase

SEED = 11


def wire_trace(mech):
    """The engagement's full wire log in canonical byte form."""
    from repro.crypto.signatures import SignedMessage

    lines = []
    for msg in mech.engine.bus.log:
        body = msg.body
        if isinstance(body, SignedMessage):
            rendered = (body.signer.encode(), body.canonical, body.signature)
        else:
            rendered = repr(body).encode()
        lines.append((msg.kind, msg.sender, msg.recipients, rendered,
                      msg.size_bytes))
    return lines


def run_pair(w, *, kind=NetworkKind.NCP_FE, z=0.4, **kwargs):
    outs = {}
    for mode in ("memoized", "independent"):
        mech = DLSBLNCP(w, kind, z, redundancy=mode, pki_seed=SEED, **kwargs)
        outs[mode] = (mech, mech.run())
    return outs


def assert_equivalent(outs):
    (mech_m, out_m) = outs["memoized"]
    (mech_i, out_i) = outs["independent"]
    assert wire_trace(mech_m) == wire_trace(mech_i)
    assert out_m.completed == out_i.completed
    assert out_m.terminal_phase == out_i.terminal_phase
    assert out_m.verdicts == out_i.verdicts
    assert out_m.bids == out_i.bids
    assert out_m.alpha == out_i.alpha
    assert out_m.phi == out_i.phi
    assert out_m.payments == out_i.payments
    assert out_m.balances == out_i.balances
    assert out_m.utilities == out_i.utilities
    assert out_m.fine_amount == out_i.fine_amount
    assert out_m.makespan_realized == out_i.makespan_realized


class TestHonestEquivalence:
    @pytest.mark.parametrize("kind", [NetworkKind.NCP_FE, NetworkKind.NCP_NFE])
    def test_small_instance(self, kind):
        assert_equivalent(run_pair([2.0, 3.0, 5.0], kind=kind))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 9))
        w = rng.uniform(1.0, 10.0, m)
        kind = NetworkKind.NCP_FE if seed % 2 == 0 else NetworkKind.NCP_NFE
        z = float(rng.uniform(0.05, 1.0))
        assert_equivalent(run_pair(w, kind=kind, z=z))

    def test_commit_bidding_mode(self):
        assert_equivalent(run_pair([2.0, 3.0, 5.0, 4.0],
                                   bidding_mode="commit"))


class TestDeviantEquivalence:
    def test_equivocator_fined_identically(self):
        outs = run_pair([2.0, 3.0, 5.0], behaviors={
            1: AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})})
        assert_equivalent(outs)
        assert not outs["memoized"][1].completed

    def test_wrong_payments_fined_identically(self):
        outs = run_pair([2.0, 3.0, 5.0], behaviors={
            2: AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})})
        assert_equivalent(outs)

    def test_contradictory_payments(self):
        outs = run_pair([2.0, 3.0, 5.0], behaviors={
            0: AgentBehavior(deviations={Deviation.CONTRADICTORY_PAYMENTS})})
        assert_equivalent(outs)


class TestFaultEquivalence:
    def test_mid_processing_crash(self):
        plan = FaultPlan(crashes=(
            CrashFault("P3", phase=Phase.PROCESSING_LOAD, progress=0.5),))
        assert_equivalent(run_pair([2.0, 3.0, 5.0, 4.0], fault_plan=plan))

    def test_message_drops_with_retry(self):
        plan = FaultPlan(seed=7, messages=(
            MessageFault(action="drop", probability=0.2),))
        assert_equivalent(run_pair([2.0, 3.0, 5.0, 4.0], fault_plan=plan,
                                   bidding_mode="commit"))

    def test_crash_and_delay_mix(self):
        plan = FaultPlan(seed=3,
                         crashes=(CrashFault("P2", at_time=0.5),),
                         messages=(MessageFault(action="delay",
                                                probability=0.3, delay=0.25),))
        assert_equivalent(run_pair([2.0, 3.0, 5.0], fault_plan=plan))


class TestCacheCounters:
    def test_memoized_run_reports_cache_activity(self):
        (_, out) = run_pair([2.0, 3.0, 5.0, 4.0])["memoized"]
        t = out.traffic
        assert t.memo_hits > 0
        assert t.memo_misses > 0
        assert t.sig_cache_hits > 0
        assert t.sig_cache_misses > 0
        # Sharing means the cache never loses: each result is computed
        # at most once, and every signature is checked at most once.
        assert t.memo_hits >= t.memo_misses
        assert t.sig_cache_hits > t.sig_cache_misses

    def test_independent_run_reports_no_memo_activity(self):
        (_, out) = run_pair([2.0, 3.0, 5.0, 4.0])["independent"]
        assert out.traffic.memo_hits == 0
        assert out.traffic.memo_misses == 0

    def test_invalid_redundancy_rejected(self):
        with pytest.raises(ValueError, match="redundancy"):
            DLSBLNCP([2.0, 3.0], NetworkKind.NCP_FE, 0.4,
                     redundancy="sometimes")
