"""Self-baselining for bench kernels added after the seed commit.

No kernel is actually timed here — these tests drive
:func:`repro.perf.bench.auto_baselines` / :func:`write_report` with
synthetic timings so they stay fast and deterministic.
"""

import json

from repro.perf.bench import SEED_TIMINGS, auto_baselines, write_report

SEED_KERNEL = next(iter(SEED_TIMINGS))


class TestAutoBaselines:
    def test_new_kernel_pins_from_first_measurement(self):
        head = {SEED_KERNEL: 0.5, "brand_new_kernel": 0.123456789}
        pinned = auto_baselines(head, prior=None)
        assert pinned == {"brand_new_kernel": 0.1234568}  # rounded, pinned
        assert SEED_KERNEL not in pinned  # seed kernels never re-pin

    def test_existing_pin_wins_over_everything(self):
        prior = {"head": {"k": 0.9}, "auto_baselined": {"k": 0.7}}
        assert auto_baselines({"k": 0.5}, prior)["k"] == 0.7

    def test_prior_head_wins_over_current_measurement(self):
        # A report written before self-baselining existed has the kernel
        # in head but no auto_baselined map: adopt the older timing.
        prior = {"head": {"k": 0.9}}
        assert auto_baselines({"k": 0.5}, prior)["k"] == 0.9

    def test_prior_pins_survive_even_unmeasured(self):
        # Quick runs may skip kernels; their pins must not be lost.
        prior = {"auto_baselined": {"gone": 1.5}}
        assert auto_baselines({}, prior) == {"gone": 1.5}


class TestWriteReport:
    def test_every_head_key_gets_a_speedup(self, tmp_path):
        head = {SEED_KERNEL: SEED_TIMINGS[SEED_KERNEL] / 2.0,
                "new_kernel": 0.2}
        report = write_report(tmp_path / "b.json", head, quick=True)
        assert set(report["speedup_vs_seed"]) == set(head)
        assert report["speedup_vs_seed"][SEED_KERNEL] == 2.0
        # First sighting: speedup vs its own pin is exactly 1.
        assert report["speedup_vs_seed"]["new_kernel"] == 1.0
        assert report["auto_baselined"] == {"new_kernel": 0.2}

    def test_second_run_reports_against_the_pin(self, tmp_path):
        path = tmp_path / "b.json"
        first = write_report(path, {"new_kernel": 0.2}, quick=True)
        prior = json.loads(path.read_text())
        assert prior == first
        second = write_report(path, {"new_kernel": 0.1}, quick=True,
                              prior=prior)
        assert second["auto_baselined"] == {"new_kernel": 0.2}
        assert second["speedup_vs_seed"]["new_kernel"] == 2.0

    def test_checked_in_report_is_self_consistent(self):
        from pathlib import Path

        doc = json.loads((Path(__file__).resolve().parents[2]
                          / "BENCH_protocol.json").read_text())
        reference = {**doc["seed"], **doc.get("auto_baselined", {})}
        for kernel in doc["head"]:
            assert kernel in reference, (
                f"{kernel} has no baseline: bench self-pinning regressed")
            assert kernel in doc["speedup_vs_seed"]
