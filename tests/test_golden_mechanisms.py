"""Golden tests for the architecture-extension mechanisms.

Hand-derived reference values for tiny star / chain / tree instances,
pinning the exclusion semantics (the one design decision per topology)
to numbers a reviewer can recompute on paper.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.dls_chain import DLSChain, chain_excluded_makespan
from repro.core.dls_star import DLSStar, star_excluded_makespan
from repro.core.dls_tree import DLSTree
from repro.dlt.architectures import StarNetwork


class TestStarGolden:
    """Star with w = (1, 1), z = (1, 1) == CP bus with z = 1.

    alpha = (2/3, 1/3); T = alpha_1 (z + w) = 4/3.
    Excluding either worker: single worker over its link: T = z + w = 2.
    Bonus = 2 - 4/3 = 2/3 each; Q = C + B = alpha + 2/3.
    """

    def test_values(self):
        mech = DLSStar([1.0, 1.0])
        r = mech.truthful_run([1.0, 1.0])
        assert r.alpha == pytest.approx([2 / 3, 1 / 3])
        assert r.makespan_reported == pytest.approx(4 / 3)
        assert r.bonuses == pytest.approx([2 / 3, 2 / 3])
        assert r.payments == pytest.approx([2 / 3 + 2 / 3, 1 / 3 + 2 / 3])

    def test_exclusions(self):
        star = StarNetwork((1.0, 1.0), (1.0, 1.0))
        assert star_excluded_makespan(star, 0) == pytest.approx(2.0)
        assert star_excluded_makespan(star, 1) == pytest.approx(2.0)

    def test_canonical_order_golden(self):
        # w = (1, 1), z = (2, 1): canonical order serves link 2 first.
        # Sorted: worker B (z=1) then A (z=2).
        # k = w_B / (z_A + w_A) = 1/3 -> weights (1, 1/3), alpha_sorted
        # = (3/4, 1/4); T = alpha_B z_B + alpha_B w_B = 3/4 + 3/4 = 3/2.
        mech = DLSStar([2.0, 1.0])
        r = mech.truthful_run([1.0, 1.0])
        assert r.makespan_reported == pytest.approx(1.5)
        # original indexing: worker 0 (slow link) got 1/4.
        assert r.alpha == pytest.approx([1 / 4, 3 / 4])


class TestChainGolden:
    """Chain w = (1, 1), hop z = 1.

    Equal finish: a1 w1 = z a2 + a2 w2 -> a1 = 2 a2 -> alpha = (2/3, 1/3).
    T = a1 w1 = 2/3 (head computes from t = 0).
    Excluding the tail: head alone: T = 1.
    Excluding the head (it keeps relaying): entry delay z*1 = 1 plus the
    tail alone: T = 1 + 1 = 2.
    """

    def test_values(self):
        mech = DLSChain([1.0])
        r = mech.truthful_run([1.0, 1.0])
        assert r.alpha == pytest.approx([2 / 3, 1 / 3])
        assert r.makespan_reported == pytest.approx(2 / 3)

    def test_exclusions(self):
        assert chain_excluded_makespan([1.0, 1.0], [1.0], 1) == pytest.approx(1.0)
        assert chain_excluded_makespan([1.0, 1.0], [1.0], 0) == pytest.approx(2.0)

    def test_bonuses(self):
        r = DLSChain([1.0]).truthful_run([1.0, 1.0])
        # B_head = 2 - 2/3 = 4/3; B_tail = 1 - 2/3 = 1/3
        assert r.bonuses == pytest.approx([4 / 3, 1 / 3])


class TestTreeGolden:
    """Two-node tree: root(w=1) --z=1--> leaf(w=1).

    This is exactly the NCP-FE bus with m = 2, z = 1:
    alpha = (2/3, 1/3), T = 2/3.
    Excluding the leaf: root alone: T = 1.
    Excluding the root (relay): leaf behind a z=1 link with a
    pure-distributor hub: T = z + w = 2.
    """

    def test_values(self):
        g = nx.DiGraph()
        g.add_node("r", w=1.0)
        g.add_node("l", w=1.0)
        g.add_edge("r", "l", z=1.0)
        mech = DLSTree(g, "r")
        r = mech.truthful_run({"r": 1.0, "l": 1.0})
        assert r.alpha == pytest.approx([2 / 3, 1 / 3])
        assert r.makespan_reported == pytest.approx(2 / 3)
        assert r.bonuses == pytest.approx([4 / 3, 1 / 3])

    def test_matches_ncp_fe_bus(self):
        from repro.core.dls_bl import DLSBL
        from repro.dlt.platform import NetworkKind

        g = nx.DiGraph()
        g.add_node("r", w=2.0)
        g.add_node("l", w=3.0)
        g.add_edge("r", "l", z=0.5)
        tree_r = DLSTree(g, "r").truthful_run({"r": 2.0, "l": 3.0})
        bus_r = DLSBL(NetworkKind.NCP_FE, 0.5).truthful_run([2.0, 3.0])
        assert tree_r.alpha == pytest.approx(bus_r.alpha)
        assert tree_r.payments == pytest.approx(bus_r.payments)
        assert tree_r.makespan_reported == pytest.approx(bus_r.makespan_reported)
