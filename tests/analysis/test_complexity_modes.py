"""Traffic measurement across bidding transports."""

import pytest

from repro.analysis.complexity import fit_loglog_slope, measure_communication
from repro.dlt.platform import NetworkKind


class TestBiddingModeTraffic:
    def test_atomic_bid_traffic_linear(self):
        samples = measure_communication([8, 32], bidding_mode="atomic")
        slope = fit_loglog_slope([s.m for s in samples],
                                 [s.bid_bytes for s in samples])
        assert slope < 1.3

    def test_p2p_bid_traffic_quadratic(self):
        samples = measure_communication([8, 32], bidding_mode="commit")
        slope = fit_loglog_slope([s.m for s in samples],
                                 [s.bid_bytes for s in samples])
        assert slope > 1.6

    def test_total_quadratic_either_way(self):
        for mode in ("atomic", "naive"):
            samples = measure_communication([8, 32, 64], bidding_mode=mode)
            slope = fit_loglog_slope([s.m for s in samples],
                                     [s.control_bytes for s in samples])
            assert 1.4 < slope < 2.3, mode

    def test_same_payment_traffic_regardless_of_transport(self):
        a = measure_communication([16], bidding_mode="atomic")[0]
        b = measure_communication([16], bidding_mode="commit")[0]
        assert a.payment_bytes == b.payment_bytes
