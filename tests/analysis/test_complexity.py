"""Tests for the Theorem 5.4 communication-complexity machinery."""

import numpy as np
import pytest

from repro.analysis.complexity import (
    fit_loglog_slope,
    measure_communication,
)
from repro.dlt.platform import NetworkKind


class TestFitLoglogSlope:
    def test_exact_power_laws(self):
        xs = np.array([2, 4, 8, 16, 32])
        assert fit_loglog_slope(xs, xs**2) == pytest.approx(2.0)
        assert fit_loglog_slope(xs, 7 * xs) == pytest.approx(1.0)
        assert fit_loglog_slope(xs, np.full(5, 3.0)) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [0, 1])


class TestMeasureCommunication:
    def test_samples_per_m(self, ncp_kind):
        samples = measure_communication([2, 4, 8], ncp_kind)
        assert [s.m for s in samples] == [2, 4, 8]
        assert all(s.control_bytes > 0 for s in samples)

    def test_payment_phase_dominates_at_scale(self, ncp_kind):
        s = measure_communication([32], ncp_kind)[0]
        assert s.payment_bytes > s.bid_bytes
        assert s.payment_bytes > 0.5 * s.control_bytes

    def test_theorem_54_quadratic_bytes(self):
        # Payment traffic is m vectors of size Theta(m): the byte count
        # must scale ~quadratically once the per-message constant is
        # amortized.
        samples = measure_communication([8, 16, 32, 64])
        slope = fit_loglog_slope([s.m for s in samples],
                                 [s.payment_bytes for s in samples])
        assert 1.6 < slope < 2.2

    def test_message_count_linear(self):
        samples = measure_communication([8, 16, 32, 64])
        slope = fit_loglog_slope([s.m for s in samples],
                                 [s.control_messages for s in samples])
        assert 0.8 < slope < 1.2

    def test_deterministic_for_seed(self):
        a = measure_communication([4, 8], seed=3)
        b = measure_communication([4, 8], seed=3)
        assert [(s.m, s.control_bytes) for s in a] == [
            (s.m, s.control_bytes) for s in b]
