"""repro.analysis.timeseries: pure arithmetic over market series.

Hand-built series with known answers first (slopes, extinction
windows), then one integration check that a real seeded deviant run
produces the S9 signatures: negative fine-frequency slope, extinction
window, and a reputation separation between deviant and honest cohorts.
"""

import pytest

from repro.analysis import (
    extinction_curve,
    fine_frequency,
    linear_trend,
    market_table,
    reputation_trajectories,
    welfare_drift,
)


class TestLinearTrend:
    def test_exact_line(self):
        assert linear_trend([1.0, 3.0, 5.0, 7.0]) == pytest.approx(2.0)

    def test_flat_and_degenerate(self):
        assert linear_trend([4.0, 4.0, 4.0]) == 0.0
        assert linear_trend([4.0]) == 0.0
        assert linear_trend([]) == 0.0


class TestWelfareDrift:
    def test_split_halves_and_slope(self):
        drift = welfare_drift({"welfare": [1.0, 2.0, 3.0, 4.0]})
        assert drift["mean"] == pytest.approx(2.5)
        assert drift["early_mean"] == pytest.approx(1.5)
        assert drift["late_mean"] == pytest.approx(3.5)
        assert drift["slope"] == pytest.approx(1.0)


class TestFineFrequency:
    def test_decaying_fines(self):
        freq = fine_frequency({"fines": [6, 4, 1, 0]})
        assert freq["total"] == 11
        assert freq["per_window"] == pytest.approx(2.75)
        assert freq["early"] == 10
        assert freq["late"] == 1
        assert freq["slope"] < 0


class TestExtinctionCurve:
    def test_extinction_window_is_the_last_recovery_free_drop(self):
        curve = extinction_curve({"deviants_alive": [2, 1, 2, 1, 0, 0]})
        assert curve["alive"] == [2, 1, 2, 1, 0, 0]
        assert curve["extinct"] is True
        assert curve["extinct_window"] == 4

    def test_survivors_have_no_extinction_window(self):
        curve = extinction_curve({"deviants_alive": [2, 1, 1, 1]})
        assert curve["extinct"] is False
        assert curve["extinct_window"] is None


class TestReputationTrajectories:
    def test_separation_is_honest_minus_deviant(self):
        traj = reputation_trajectories({
            "deviant_reputation": [0.9, 0.4, 0.1],
            "honest_reputation": [1.0, 1.0, 0.9]})
        assert traj["deviant"] == [0.9, 0.4, 0.1]
        assert traj["separation"] == pytest.approx(0.8)


class TestMarketIntegration:
    @pytest.fixture(scope="class")
    def deviant_run(self):
        from repro.api import MarketRequest
        from repro.market import run_market

        return run_market(MarketRequest(
            rounds=100, seed=7, processors=6, cohort=3, num_blocks=12,
            deviants=((0, "multiple-bids"),), reputation_decay=0.6,
            admission_floor=0.3, window=20))

    def test_s9_signatures(self, deviant_run):
        series = deviant_run.series
        assert fine_frequency(series)["slope"] < 0
        curve = extinction_curve(series)
        assert curve["extinct"] is True
        assert curve["extinct_window"] is not None
        separation = reputation_trajectories(series)["separation"]
        assert separation > 0.3

    def test_market_table_renders_attr_and_dict_results(self,
                                                        deviant_run):
        headers, rows = market_table(deviant_run)
        assert headers[0] == "window"
        assert len(rows) == len(deviant_run.series["welfare"])
        dict_headers, dict_rows = market_table(
            {"series": deviant_run.series})
        assert (dict_headers, dict_rows) == (headers, rows)
