"""Tests for the table renderer."""

import pytest

from repro.analysis.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(("name", "value"), [("alpha", 1.5), ("b", 22.25)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(("a",), [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_numbers_right_aligned_strings_left(self):
        out = format_table(("n", "s"), [(1, "x"), (100, "yy")])
        rows = out.splitlines()[2:]
        assert rows[0].startswith("  1")
        assert rows[1].startswith("100")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_float_formatting_compact(self):
        out = format_table(("v",), [(0.123456789,)])
        assert "0.123457" in out


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series("makespan", [1, 2], [0.5, 0.25])
        assert "makespan" in out
        assert len(out.splitlines()) == 4
