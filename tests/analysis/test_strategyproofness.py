"""Tests for strategyproofness sweeps (the E6 experiment machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.strategyproofness import (
    agent_utility,
    best_response_bid_factor,
    utility_curve,
    utility_surface,
)
from repro.core.dls_bl import DLSBL
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import regime_network_strategy

NET = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.CP)


class TestAgentUtility:
    def test_matches_mechanism_run(self, kind):
        net = BusNetwork((2.0, 3.0, 5.0), 0.4, kind)
        mech = DLSBL(kind, 0.4)
        w = np.array(net.w)
        for i in range(3):
            fast = agent_utility(net, i)
            bids = w.copy()
            full = mech.run(bids, w).utilities[i]
            assert fast == pytest.approx(full)

    def test_misreport_path_matches_mechanism(self):
        mech = DLSBL(NET.kind, NET.z)
        w = np.array(NET.w)
        bids = w.copy()
        bids[2] = 1.5 * w[2]
        expected = mech.run(bids, w).utilities[2]
        assert agent_utility(NET, 2, bid_factor=1.5) == pytest.approx(expected)

    def test_exec_factor_below_one_clamped(self):
        assert agent_utility(NET, 0, exec_factor=0.5) == pytest.approx(
            agent_utility(NET, 0, exec_factor=1.0))

    def test_others_bid_factors_respected(self):
        u_honest_others = agent_utility(NET, 1)
        u_lying_others = agent_utility(NET, 1,
                                       others_bid_factors=[2.0, 1.0, 2.0, 2.0])
        assert u_honest_others != pytest.approx(u_lying_others)


class TestSweeps:
    def test_curve_length_and_points(self):
        pts = utility_curve(NET, 0, [0.8, 1.0, 1.2])
        assert [p.bid_factor for p in pts] == [0.8, 1.0, 1.2]
        assert all(np.isfinite(p.utility) for p in pts)

    def test_surface_shape(self):
        s = utility_surface(NET, 1, [0.9, 1.0, 1.1], [1.0, 1.5])
        assert s.shape == (3, 2)

    def test_surface_peak_at_truthful_corner(self):
        bid_f = [0.7, 0.85, 1.0, 1.3, 1.6]
        exec_f = [1.0, 1.25, 1.5]
        s = utility_surface(NET, 1, bid_f, exec_f)
        r, c = np.unravel_index(np.argmax(s), s.shape)
        assert bid_f[r] == 1.0
        assert exec_f[c] == 1.0


class TestBestResponse:
    def test_grid_best_response_is_truth(self, kind):
        net = BusNetwork((2.0, 3.0, 5.0), 0.3, kind)
        grid = np.linspace(0.5, 2.0, 31)  # includes 1.0
        for i in range(3):
            bf, _ = best_response_bid_factor(net, i, grid)
            assert bf == pytest.approx(1.0)

    @given(regime_network_strategy(min_m=2, max_m=6),
           st.integers(min_value=0, max_value=5),
           st.lists(st.floats(min_value=0.85, max_value=2.0), min_size=1,
                    max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_dominance_against_random_profiles(self, net, i_raw, others_raw):
        # For random others' bid factors, no grid deviation beats truth.
        # Others' factors are bounded below by 0.85 so their lies cannot
        # push the *bid profile* out of the DLT regime (z < min bids):
        # outside it Algorithm 2.2 stops being the optimal allocation
        # rule and the dominance argument genuinely fails for NCP-NFE —
        # see test_nfe_dominance_needs_regime_bids below and DESIGN.md.
        i = i_raw % net.m
        others = np.ones(net.m)
        for j, f in enumerate(others_raw):
            others[j % net.m] = f
        others[i] = 1.0
        grid = [0.6, 0.8, 1.0, 1.25, 1.6]
        _, best_u = best_response_bid_factor(net, i, grid,
                                             others_bid_factors=others)
        u_truth = agent_utility(net, i, others_bid_factors=others)
        assert best_u <= u_truth + 1e-9

    def test_nfe_dominance_needs_regime_bids(self):
        # Documentation of the boundary found by hypothesis: on NCP-NFE
        # with true w = (1, 1) and z = 0.75, if the *originator*
        # underbids to 0.5 (pushing z above the smallest bid), agent 0
        # gains by misreporting: the closed-form allocation is no longer
        # optimal for the lied-about instance, so nudging it via a false
        # bid can reduce the realized makespan term of the bonus.
        net = BusNetwork((1.0, 1.0), 0.75, NetworkKind.NCP_NFE)
        others = np.array([1.0, 0.5])  # originator lies out of regime
        u_truth = agent_utility(net, 0, others_bid_factors=others)
        _, best_u = best_response_bid_factor(
            net, 0, [0.6, 0.8, 1.0, 1.25, 1.6], others_bid_factors=others)
        assert best_u > u_truth + 1e-6
