"""Tests for coalition-manipulation analysis."""

import numpy as np
import pytest

from repro.analysis.coalitions import (
    CoalitionResult,
    coalition_best_response,
    coalition_sweep,
    coalition_utilities,
)
from repro.dlt.platform import BusNetwork, NetworkKind

NET = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.CP)
GRID = (0.75, 1.0, 1.5, 2.0)


class TestCoalitionUtilities:
    def test_truthful_matches_individual_sum(self):
        from repro.core.payments import utilities

        u = utilities(NET, np.asarray(NET.w))
        joint = coalition_utilities(NET, (0, 2), (1.0, 1.0))
        assert joint == pytest.approx(float(u[0] + u[2]))

    def test_underbidder_clamped_to_true_speed(self):
        # An underbidding colluder cannot deliver its bid: execution is
        # pinned at w, which the utility must reflect.
        lone = coalition_utilities(NET, (1,), (0.75,))
        truthful = coalition_utilities(NET, (1,), (1.0,))
        assert lone <= truthful + 1e-9


class TestIndividualConsistency:
    def test_singletons_never_profit(self):
        # Coalition of one == Theorem 3.1: must never gain.
        for r in coalition_sweep(NET, size=1, grid=GRID):
            assert not r.profitable
            assert r.best_factors == (1.0,)


class TestGroupManipulation:
    def test_some_pair_profits(self):
        # The headline ablation: DLS-BL is NOT group-strategyproof.
        results = coalition_sweep(NET, size=2, grid=GRID)
        assert any(r.profitable for r in results)

    def test_profitable_pattern_is_partner_overbidding(self):
        # The gain comes from a partner inflating the other's exclusion
        # term: in every profitable pair at least one member overbids.
        for r in coalition_sweep(NET, size=2, grid=GRID):
            if r.profitable:
                assert max(r.best_factors) > 1.0

    def test_gain_is_side_payment_dependent(self):
        # The colluders' *joint* utility rises, but the overbidder alone
        # typically loses — the coalition only works with transfers.
        from repro.core.payments import utilities

        r = next(r for r in coalition_sweep(NET, size=2, grid=GRID)
                 if r.profitable)
        w = NET.w_array
        bids = w.copy()
        for i, f in zip(r.members, r.best_factors):
            bids[i] = f * w[i]
        u = utilities(NET.with_w(bids), np.maximum(w, bids))
        u_truth = utilities(NET, w)
        overbidders = [i for i, f in zip(r.members, r.best_factors) if f > 1.0]
        assert any(u[i] < u_truth[i] + 1e-9 for i in overbidders)


class TestApi:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            coalition_sweep(NET, size=0)
        with pytest.raises(ValueError):
            coalition_sweep(NET, size=99)

    def test_result_fields(self):
        r = coalition_best_response(NET, (0, 1), GRID)
        assert isinstance(r, CoalitionResult)
        assert r.members == (0, 1)
        assert r.gain == pytest.approx(r.joint_utility - r.truthful_joint_utility)
