"""Best-response dynamics must snap to truth in one round (dominance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dynamics import (
    best_response_bid,
    best_response_dynamics,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import regime_network_strategy

NET = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.CP)


class TestBestResponseBid:
    def test_truth_against_truthful_others(self):
        bids = NET.w_array.copy()
        for i in range(NET.m):
            assert best_response_bid(NET, i, bids, (0.5, 1.0, 2.0)) == \
                pytest.approx(NET.w[i])

    def test_truth_against_lying_others(self):
        bids = NET.w_array * np.array([1.8, 0.7, 1.3, 1.0])
        for i in range(NET.m):
            b = best_response_bid(NET, i, bids, (0.5, 0.9, 1.0, 1.1, 2.0))
            assert b == pytest.approx(NET.w[i])


class TestDynamics:
    def test_one_round_convergence_from_anywhere(self):
        trace = best_response_dynamics(NET, [1.8, 0.6, 1.4, 0.9])
        assert trace.converged
        assert trace.distance_to(NET.w) < 1e-12
        # dominant strategies: the profile is truthful after ROUND ONE
        assert np.allclose(trace.profiles[1], NET.w)

    def test_truthful_start_is_fixed_point(self):
        trace = best_response_dynamics(NET, [1.0] * NET.m)
        assert trace.rounds <= 2
        assert np.allclose(trace.profiles[-1], NET.w)

    @given(regime_network_strategy(min_m=2, max_m=6),
           st.lists(st.floats(min_value=0.85, max_value=2.0), min_size=2,
                    max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_convergence_property(self, net, factors_raw):
        # Starting factors >= 0.85 keep the intermediate bid profiles in
        # the DLT regime (the same restriction the dominance theorem
        # needs on NCP-NFE — DESIGN.md §3.5 finding 5).
        factors = np.ones(net.m)
        for j, f in enumerate(factors_raw[: net.m]):
            factors[j] = f
        trace = best_response_dynamics(net, factors)
        assert trace.converged
        assert trace.distance_to(net.w) < 1e-9
        assert np.allclose(trace.profiles[1], net.w, rtol=1e-12)

    def test_out_of_regime_start_converges_but_not_in_one_round(self):
        # Documentation of the boundary: an NCP-NFE start with the
        # originator underbidding past z breaks one-round dominance
        # (best responses against an out-of-regime profile need not be
        # truthful); the dynamics may still settle, just not with the
        # one-round signature.
        net = BusNetwork((1.0, 1.0), 0.75, NetworkKind.NCP_NFE)
        trace = best_response_dynamics(net, [1.0, 0.5])
        assert not np.allclose(trace.profiles[1], net.w)
