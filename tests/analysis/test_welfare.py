"""Tests for welfare metrics and cross-system comparison."""

import numpy as np
import pytest

from repro.analysis.welfare import kind_comparison, truthful_profile
from repro.dlt.platform import NetworkKind

W = [2.0, 3.0, 5.0, 4.0]


class TestTruthfulProfile:
    def test_utilities_nonnegative(self, kind):
        r = truthful_profile(W, kind, 0.4)
        assert min(r.utilities) >= -1e-10

    def test_user_cost_exceeds_work_cost(self, kind):
        r = truthful_profile(W, kind, 0.4)
        assert r.user_cost >= sum(r.compensations) - 1e-10


class TestKindComparison:
    def test_contains_all_kinds(self):
        kc = kind_comparison(W, 0.4)
        assert set(kc.makespans) == set(NetworkKind)
        assert set(kc.user_costs) == set(NetworkKind)

    def test_cp_is_never_fastest(self):
        # Both NCP systems dominate CP (their originator computes).
        for z in (0.1, 0.5, 1.0):
            kc = kind_comparison(W, z)
            assert kc.ranking[-1] is NetworkKind.CP or (
                kc.makespans[NetworkKind.CP]
                >= max(kc.makespans[NetworkKind.NCP_FE],
                       kc.makespans[NetworkKind.NCP_NFE]) - 1e-12)

    def test_gap_widens_with_z(self):
        slow = kind_comparison(W, 1.5)
        fast = kind_comparison(W, 0.05)
        gap = lambda kc: (kc.makespans[NetworkKind.CP]
                          - kc.makespans[NetworkKind.NCP_FE])
        assert gap(slow) > gap(fast)

    def test_ranking_sorted(self):
        kc = kind_comparison(W, 0.4)
        values = [kc.makespans[k] for k in kc.ranking]
        assert values == sorted(values)
