"""Tests for the workload family generators."""

import numpy as np
import pytest

from repro.analysis.workloads import FAMILIES, family_names, generate


class TestGenerate:
    @pytest.mark.parametrize("family", family_names())
    def test_positive_and_shaped(self, family, rng):
        w = generate(family, 16, rng)
        assert w.shape == (16,)
        assert np.all(w > 0)
        assert np.all(np.isfinite(w))

    def test_unknown_family_fails_loudly(self, rng):
        with pytest.raises(ValueError, match="unknown workload family"):
            generate("quantum", 4, rng)

    def test_bad_m(self, rng):
        with pytest.raises(ValueError):
            generate("uniform", 0, rng)

    def test_deterministic_per_seed(self):
        a = generate("heavy-tail", 8, np.random.default_rng(5))
        b = generate("heavy-tail", 8, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestFamilyShapes:
    def test_homogeneous_is_tight(self, rng):
        w = generate("homogeneous", 64, rng)
        assert w.std() / w.mean() < 0.1

    def test_two_tier_is_bimodal(self, rng):
        w = generate("two-tier", 500, rng)
        assert (w > 4.0).mean() > 0.1   # some slow machines
        assert (w < 3.0).mean() > 0.4   # many fast ones

    def test_heavy_tail_has_stragglers(self, rng):
        w = generate("heavy-tail", 1000, rng)
        assert w.max() / np.median(w) > 4.0

    def test_ordered_is_sorted(self, rng):
        w = generate("ordered", 32, rng)
        assert np.all(np.diff(w) >= 0)

    def test_registry_and_names_agree(self):
        assert set(family_names()) == set(FAMILIES)
