"""Tests for strategyproofness under contention (E32)."""

import pytest

from repro.analysis.contention import (
    best_cross_response,
    contention_plan,
    cross_engagement_curve,
    policy_flow_table,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.protocol.arbiter import EngagementJob

NET_A = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.NCP_FE)
NET_B = BusNetwork((3.0, 4.0, 6.0), 0.4, NetworkKind.NCP_NFE)
FACTORS = [0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5]


class TestCrossEngagementCurve:
    def test_truthful_maximizes_combined_utility(self):
        points = cross_engagement_curve(NET_A, NET_B, 1, 0, FACTORS)
        argmax, _, spread = best_cross_response(points)
        assert argmax == pytest.approx(1.0)
        assert spread == 0.0

    def test_b_side_is_exactly_flat(self):
        # Nothing played in A reaches B's settlement: utility_b must be
        # bit-identical (not approximately equal) along the A-sweep.
        points = cross_engagement_curve(NET_A, NET_B, 2, 1, FACTORS)
        assert len({p.utility_b for p in points}) == 1

    def test_combined_is_the_sum(self):
        for p in cross_engagement_curve(NET_A, NET_B, 1, 0, [0.9, 1.0]):
            assert p.combined == pytest.approx(p.utility_a + p.utility_b)

    def test_sharded_run_matches_serial(self):
        serial = cross_engagement_curve(NET_A, NET_B, 1, 0, FACTORS)
        sharded = cross_engagement_curve(NET_A, NET_B, 1, 0, FACTORS,
                                         workers=2)
        assert sharded == serial

    def test_batch_executor_matches_scalar(self):
        from repro.sweep import RunOptions, run_plan

        plan = contention_plan(NET_A, NET_B, 1, 0, FACTORS)
        batch = run_plan(plan, RunOptions())
        scalar = run_plan(plan, RunOptions(batch=False))
        assert batch.records == scalar.records
        assert batch.digest() == scalar.digest()

    def test_rejects_mismatched_z(self):
        other = BusNetwork((3.0, 4.0, 6.0), 0.7, NetworkKind.NCP_FE)
        with pytest.raises(ValueError, match="share its z"):
            contention_plan(NET_A, other, 0, 0, [1.0])


class TestPolicyFlowTable:
    JOBS = (
        EngagementJob("E1", (4.0, 6.0, 10.0, 8.0), NetworkKind.NCP_FE),
        EngagementJob("E2", (2.0, 3.0, 5.0), NetworkKind.NCP_NFE),
        EngagementJob("E3", (1.0, 1.5, 2.5, 2.0), NetworkKind.NCP_FE),
    )

    def test_settlements_invariant_under_every_policy(self):
        rows = policy_flow_table(0.4, self.JOBS)
        assert [r.policy for r in rows] == ["fifo", "sjf", "rr"]
        assert all(r.settlements_match_solo for r in rows)

    def test_sjf_beats_fifo_on_mean_flow_time(self):
        rows = {r.policy: r for r in policy_flow_table(
            0.4, self.JOBS, policies=("fifo", "sjf"))}
        assert rows["sjf"].mean_flow_time < rows["fifo"].mean_flow_time
        assert rows["sjf"].order == ("E3", "E2", "E1")
