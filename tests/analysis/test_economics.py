"""Tests for the price-of-truthfulness analysis."""

import numpy as np
import pytest

from repro.analysis.economics import (
    CostBreakdown,
    overpayment_ratio,
    overpayment_sweep,
    user_cost_breakdown,
)
from repro.core.dls_bl import DLSBL
from repro.dlt.platform import NetworkKind

W = [2.0, 3.0, 5.0, 4.0]


class TestBreakdown:
    def test_components_match_mechanism(self, kind):
        bd = user_cost_breakdown(W, kind, 0.4)
        r = DLSBL(kind, 0.4).truthful_run(W)
        assert bd.user_cost == pytest.approx(r.user_cost)
        assert bd.compensation_total == pytest.approx(sum(r.compensations))
        assert bd.bonus_total == pytest.approx(sum(r.bonuses))

    def test_ratio_at_least_one_for_truthful(self, kind):
        # Truthful bonuses are non-negative, so the user never pays
        # below cost.
        assert overpayment_ratio(W, kind, 0.4) >= 1.0 - 1e-12


class TestSweep:
    def test_rows_per_m(self):
        rows = overpayment_sweep([2, 4, 8], trials=5)
        assert [r[0] for r in rows] == [2, 4, 8]
        assert all(r[1] >= 1.0 - 1e-12 for r in rows)
        assert all(r[2] >= r[1] - 1e-12 for r in rows)  # max >= mean

    def test_premium_decays_with_m(self):
        # Marginal contributions shrink in larger systems: the mean
        # truthfulness premium at m=16 is below the premium at m=2.
        rows = overpayment_sweep([2, 16], trials=20)
        assert rows[-1][1] < rows[0][1]

    def test_deterministic_for_seed(self):
        a = overpayment_sweep([4], trials=5, seed=7)
        b = overpayment_sweep([4], trials=5, seed=7)
        assert a == b
