"""Tests for sensitivity / conditioning analysis."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.sensitivity import (
    allocation_sensitivity,
    payment_sensitivity,
    worst_case_condition,
)
from repro.dlt.platform import BusNetwork, NetworkKind
from tests.conftest import regime_network_strategy

NET = BusNetwork((2.0, 3.0, 5.0, 4.0), 0.4, NetworkKind.CP)


class TestAllocationSensitivity:
    def test_positive_and_finite(self):
        for i in range(NET.m):
            s = allocation_sensitivity(NET, i)
            assert 0 < s < 10

    @given(regime_network_strategy(min_m=2, max_m=8))
    @settings(max_examples=40, deadline=None)
    def test_conditioning_is_order_one(self, net):
        # Smooth rational closed forms: relative output change stays
        # within a small constant of the relative input change.
        s = max(allocation_sensitivity(net, i) for i in range(net.m))
        assert s < 25

    def test_slower_processor_less_influential(self):
        # The slowest processor carries the least load; bumping it moves
        # the allocation less than bumping the fastest.
        net = BusNetwork((1.0, 20.0), 0.2, NetworkKind.CP)
        assert allocation_sensitivity(net, 0) > allocation_sensitivity(net, 1)


class TestPaymentSensitivity:
    def test_positive_and_finite(self):
        for i in range(NET.m):
            s = payment_sensitivity(NET, i)
            assert 0 < s < 50

    def test_eps_stability(self):
        # The estimate is a derivative: halving eps should not move it
        # materially (no catastrophic cancellation).
        a = payment_sensitivity(NET, 1, eps=1e-4)
        b = payment_sensitivity(NET, 1, eps=5e-5)
        assert a == pytest.approx(b, rel=1e-2)


class TestWorstCase:
    def test_reports_both_channels(self):
        wc = worst_case_condition(NET)
        assert set(wc) == {"allocation", "payments"}
        assert wc["payments"] >= 0 and wc["allocation"] >= 0
