"""Tests for strategy descriptions."""

import pytest

from repro.agents.behaviors import (
    AgentBehavior,
    Deviation,
    misreport,
    slow_execution,
    truthful,
)


class TestConstruction:
    def test_defaults_are_honest(self):
        b = truthful()
        assert b.is_honest and b.is_compliant
        assert b.is_truthful_reporter and b.is_full_speed

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ValueError):
            AgentBehavior(bid_factor=0.0)
        with pytest.raises(ValueError):
            AgentBehavior(exec_factor=-1.0)

    def test_deviations_coerced_to_frozenset(self):
        b = AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})
        assert isinstance(b.deviations, frozenset)


class TestClassification:
    def test_misreporter_not_honest_but_compliant(self):
        b = misreport(1.5)
        assert not b.is_honest
        assert b.is_compliant
        assert not b.is_truthful_reporter

    def test_slacker_not_honest_but_compliant(self):
        b = slow_execution(2.0)
        assert not b.is_honest
        assert b.is_compliant
        assert not b.is_full_speed

    def test_deviant_not_compliant(self):
        b = AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})
        assert not b.is_compliant and not b.is_honest

    def test_silent_observer_counts_as_compliant(self):
        # Shirking the monitoring duty breaks no protocol rule; it only
        # forfeits informer rewards.
        b = AgentBehavior(deviations={Deviation.SILENT_OBSERVER})
        assert b.is_compliant


class TestValueMapping:
    def test_bid_for(self):
        assert misreport(1.5).bid_for(2.0) == pytest.approx(3.0)
        assert truthful().bid_for(2.0) == pytest.approx(2.0)

    def test_exec_value_clamped_to_physical_floor(self):
        # An agent cannot execute faster than its true speed: factors
        # below 1 clamp to w_i.
        assert AgentBehavior(exec_factor=0.5).exec_value_for(2.0) == pytest.approx(2.0)
        assert AgentBehavior(exec_factor=1.5).exec_value_for(2.0) == pytest.approx(3.0)


class TestDeviantReferees:
    def test_strategy_literals_pin_core_quorum(self):
        # behaviors.py keeps these as literals so the agents layer never
        # imports repro.core (layering); this test is the contract that
        # the two copies cannot drift apart.
        from repro.agents.behaviors import (
            REFEREE_EQUIVOCATE,
            REFEREE_FINE_STEAL,
            REFEREE_SILENT,
            REFEREE_STRATEGIES,
        )
        from repro.core import quorum

        assert REFEREE_SILENT == quorum.SILENT
        assert REFEREE_EQUIVOCATE == quorum.EQUIVOCATE
        assert REFEREE_FINE_STEAL == quorum.FINE_STEAL
        assert REFEREE_STRATEGIES == quorum.BYZANTINE_STRATEGIES

    def test_byzantine_referee_builds_config_entries(self):
        from repro.agents.behaviors import (
            REFEREE_EQUIVOCATE,
            byzantine_referee,
        )
        from repro.core.quorum import CommitteeConfig

        entry = byzantine_referee(2, REFEREE_EQUIVOCATE)
        assert entry == (2, REFEREE_EQUIVOCATE)
        cfg = CommitteeConfig(size=4, byzantine=(byzantine_referee(0),))
        assert cfg.strategy_for(0) == "silent"

    def test_byzantine_referee_validates(self):
        from repro.agents.behaviors import byzantine_referee

        with pytest.raises(ValueError):
            byzantine_referee(-1)
        with pytest.raises(ValueError):
            byzantine_referee(0, "bribable")
