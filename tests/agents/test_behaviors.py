"""Tests for strategy descriptions."""

import pytest

from repro.agents.behaviors import (
    AgentBehavior,
    Deviation,
    misreport,
    slow_execution,
    truthful,
)


class TestConstruction:
    def test_defaults_are_honest(self):
        b = truthful()
        assert b.is_honest and b.is_compliant
        assert b.is_truthful_reporter and b.is_full_speed

    def test_rejects_nonpositive_factors(self):
        with pytest.raises(ValueError):
            AgentBehavior(bid_factor=0.0)
        with pytest.raises(ValueError):
            AgentBehavior(exec_factor=-1.0)

    def test_deviations_coerced_to_frozenset(self):
        b = AgentBehavior(deviations={Deviation.MULTIPLE_BIDS})
        assert isinstance(b.deviations, frozenset)


class TestClassification:
    def test_misreporter_not_honest_but_compliant(self):
        b = misreport(1.5)
        assert not b.is_honest
        assert b.is_compliant
        assert not b.is_truthful_reporter

    def test_slacker_not_honest_but_compliant(self):
        b = slow_execution(2.0)
        assert not b.is_honest
        assert b.is_compliant
        assert not b.is_full_speed

    def test_deviant_not_compliant(self):
        b = AgentBehavior(deviations={Deviation.WRONG_PAYMENTS})
        assert not b.is_compliant and not b.is_honest

    def test_silent_observer_counts_as_compliant(self):
        # Shirking the monitoring duty breaks no protocol rule; it only
        # forfeits informer rewards.
        b = AgentBehavior(deviations={Deviation.SILENT_OBSERVER})
        assert b.is_compliant


class TestValueMapping:
    def test_bid_for(self):
        assert misreport(1.5).bid_for(2.0) == pytest.approx(3.0)
        assert truthful().bid_for(2.0) == pytest.approx(2.0)

    def test_exec_value_clamped_to_physical_floor(self):
        # An agent cannot execute faster than its true speed: factors
        # below 1 clamp to w_i.
        assert AgentBehavior(exec_factor=0.5).exec_value_for(2.0) == pytest.approx(2.0)
        assert AgentBehavior(exec_factor=1.5).exec_value_for(2.0) == pytest.approx(3.0)
