"""Tests for the processor agent's strategy execution and monitoring."""

import numpy as np
import pytest

from repro.agents.behaviors import AgentBehavior, Deviation, truthful
from repro.agents.processor import ProcessorAgent
from repro.crypto.pki import PKI
from repro.dlt.closed_form import allocate
from repro.dlt.platform import BusNetwork, NetworkKind


@pytest.fixture
def world():
    pki = PKI()

    def make(name, w, behavior=None):
        return ProcessorAgent(name, w, behavior or truthful(),
                              key=pki.register(name), pki=pki,
                              kind=NetworkKind.NCP_FE, z=0.5)

    return pki, make


def exchange_bids(agents):
    """Simulate the all-to-all broadcast."""
    for a in agents:
        for msg in a.make_bid_messages():
            for b in agents:
                b.observe_bid(msg)


class TestBidding:
    def test_truthful_bid_equals_w(self, world):
        _, make = world
        a = make("P1", 2.5)
        msgs = a.make_bid_messages()
        assert len(msgs) == 1
        assert msgs[0].payload == {"processor": "P1", "bid": 2.5}

    def test_misreported_bid(self, world):
        _, make = world
        a = make("P1", 2.0, AgentBehavior(bid_factor=1.5))
        assert a.make_bid_messages()[0].payload["bid"] == pytest.approx(3.0)

    def test_multiple_bids_deviation(self, world):
        _, make = world
        a = make("P1", 2.0, AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}))
        msgs = a.make_bid_messages()
        assert len(msgs) == 2
        assert msgs[0].payload["bid"] != msgs[1].payload["bid"]

    def test_unauthentic_bid_discarded(self, world):
        from repro.crypto.signatures import SigningKey

        pki, make = world
        a = make("P1", 2.0)
        rogue = SigningKey("ghost")
        a.observe_bid(rogue.sign({"processor": "ghost", "bid": 1.0}))
        assert a._bid_archive == {}

    def test_signer_payload_mismatch_discarded(self, world):
        pki, make = world
        a, b = make("P1", 2.0), make("P2", 3.0)
        # P2 signs a payload claiming to be P1: authentic signature,
        # inconsistent identity -> discarded.
        evil = b.key.sign({"processor": "P1", "bid": 1.0})
        a.observe_bid(evil)
        assert a._bid_archive == {}

    def test_duplicate_identical_bid_archived_once(self, world):
        _, make = world
        a, b = make("P1", 2.0), make("P2", 3.0)
        msg = b.make_bid_messages()[0]
        a.observe_bid(msg)
        a.observe_bid(msg)
        assert len(a._bid_archive["P2"]) == 1


class TestMonitoring:
    def test_detects_equivocation(self, world):
        _, make = world
        honest = make("P1", 2.0)
        cheat = make("P2", 3.0, AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}))
        exchange_bids([honest, cheat])
        found = honest.detect_equivocations()
        assert len(found) == 1
        accused, (m1, m2) = found[0]
        assert accused == "P2"
        assert m1.payload != m2.payload

    def test_never_reports_self(self, world):
        _, make = world
        cheat = make("P2", 3.0, AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}))
        honest = make("P1", 2.0)
        exchange_bids([honest, cheat])
        assert cheat.detect_equivocations() == []

    def test_silent_observer_reports_nothing(self, world):
        _, make = world
        silent = make("P1", 2.0, AgentBehavior(deviations={Deviation.SILENT_OBSERVER}))
        cheat = make("P2", 3.0, AgentBehavior(deviations={Deviation.MULTIPLE_BIDS}))
        exchange_bids([silent, cheat])
        assert silent.detect_equivocations() == []

    def test_fabricated_claim_uses_single_message_twice(self, world):
        _, make = world
        liar = make("P1", 2.0, AgentBehavior(
            deviations={Deviation.FALSE_EQUIVOCATION_CLAIM},
            deviation_params={"victim": "P2"}))
        honest = make("P2", 3.0)
        exchange_bids([liar, honest])
        victim, (m1, m2) = liar.fabricate_equivocation_claim(["P1", "P2"])
        assert victim == "P2"
        assert m1 is m2  # non-probative: cannot forge a second message


class TestAllocationPhase:
    def test_allocation_matches_closed_form(self, world):
        _, make = world
        agents = [make("P1", 2.0), make("P2", 3.0), make("P3", 5.0)]
        exchange_bids(agents)
        order = ["P1", "P2", "P3"]
        net = BusNetwork((2.0, 3.0, 5.0), 0.5, NetworkKind.NCP_FE)
        for a in agents:
            assert a.compute_allocation(order) == pytest.approx(allocate(net))

    def test_bid_view_consistent_across_honest_agents(self, world):
        _, make = world
        agents = [make("P1", 2.0), make("P2", 3.0)]
        exchange_bids(agents)
        assert agents[0].bid_view(["P1", "P2"]) == agents[1].bid_view(["P1", "P2"])

    def test_bid_view_missing_raises(self, world):
        _, make = world
        a = make("P1", 2.0)
        with pytest.raises(KeyError):
            a.bid_view(["P1", "P2"])

    def test_honest_shipment_plan_is_entitlement(self, world):
        _, make = world
        a = make("P1", 2.0)
        plan = a.planned_shipments({"P1": 40, "P2": 35, "P3": 25})
        assert plan == {"P1": 40, "P2": 35, "P3": 25}

    def test_short_allocation_plan(self, world):
        _, make = world
        a = make("P1", 2.0, AgentBehavior(
            deviations={Deviation.SHORT_ALLOCATION},
            deviation_params={"victim": "P3", "delta_blocks": 5}))
        plan = a.planned_shipments({"P1": 40, "P2": 35, "P3": 25})
        assert plan == {"P1": 40, "P2": 35, "P3": 20}

    def test_over_allocation_plan(self, world):
        _, make = world
        a = make("P1", 2.0, AgentBehavior(
            deviations={Deviation.OVER_ALLOCATION},
            deviation_params={"victim": "P2", "delta_blocks": 2}))
        plan = a.planned_shipments({"P1": 40, "P2": 35, "P3": 25})
        assert plan["P2"] == 37

    def test_dispute_logic(self, world):
        _, make = world
        honest = make("P2", 3.0)
        assert honest.disputes_assignment(20, 25)
        assert honest.disputes_assignment(30, 25)
        assert not honest.disputes_assignment(25, 25)

    def test_false_claim_disputes_correct_count(self, world):
        _, make = world
        liar = make("P2", 3.0, AgentBehavior(
            deviations={Deviation.FALSE_ALLOCATION_CLAIM}))
        assert liar.disputes_assignment(25, 25)

    def test_manipulated_bid_vector_resigns_own_entry(self, world):
        pki, make = world
        agents = [make("P1", 2.0, AgentBehavior(
            deviations={Deviation.MANIPULATED_BID_VECTOR},
            deviation_params={"vector_bid_factor": 2.0})), make("P2", 3.0)]
        exchange_bids(agents)
        vec = agents[0].bid_vector_messages(["P1", "P2"])
        own = [m for m in vec if m.signer == "P1"][0]
        assert own.payload["bid"] == pytest.approx(4.0)
        assert pki.verify(own)  # re-signed with its own key: authentic


class TestExecutionAndPayments:
    def test_exec_value_floor(self, world):
        _, make = world
        eager = make("P1", 2.0, AgentBehavior(exec_factor=0.25))
        assert eager.exec_value == pytest.approx(2.0)

    def test_payment_vector_correct_for_honest(self, world):
        from repro.core.payments import payments as compute_payments

        _, make = world
        agents = [make("P1", 2.0), make("P2", 3.0)]
        exchange_bids(agents)
        order = ["P1", "P2"]
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        alpha = allocate(net)
        phi = {"P1": alpha[0] * 2.0, "P2": alpha[1] * 3.0}
        msgs = agents[0].payment_vector_messages(order, alpha, phi)
        assert len(msgs) == 1
        expected = compute_payments(net, np.array([2.0, 3.0]))
        assert msgs[0].payload["Q"] == pytest.approx(expected)

    def test_wrong_payments_scaled(self, world):
        _, make = world
        agents = [make("P1", 2.0, AgentBehavior(
            deviations={Deviation.WRONG_PAYMENTS},
            deviation_params={"payment_scale": 2.0})), make("P2", 3.0)]
        exchange_bids(agents)
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        alpha = allocate(net)
        phi = {"P1": alpha[0] * 2.0, "P2": alpha[1] * 3.0}
        from repro.core.payments import payments as compute_payments

        wrong = agents[0].payment_vector_messages(["P1", "P2"], alpha, phi)
        right = compute_payments(net, np.array([2.0, 3.0]))
        assert wrong[0].payload["Q"] == pytest.approx(2.0 * right)

    def test_contradictory_payment_messages(self, world):
        _, make = world
        agents = [make("P1", 2.0, AgentBehavior(
            deviations={Deviation.CONTRADICTORY_PAYMENTS})), make("P2", 3.0)]
        exchange_bids(agents)
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_FE)
        alpha = allocate(net)
        phi = {"P1": alpha[0] * 2.0, "P2": alpha[1] * 3.0}
        msgs = agents[0].payment_vector_messages(["P1", "P2"], alpha, phi)
        assert len(msgs) == 2
        assert msgs[0].payload["Q"] != msgs[1].payload["Q"]

    def test_rejects_nonpositive_w(self, world):
        _, make = world
        with pytest.raises(ValueError):
            make("PX", 0.0)
