"""Tests for JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.core.dls_bl import DLSBL
from repro.core.dls_bl_ncp import DLSBLNCP
from repro.dlt.platform import BusNetwork, NetworkKind
from repro.io import (
    dumps_network,
    dumps_result,
    loads_network,
    mechanism_result_to_dict,
    network_from_dict,
    network_to_dict,
    protocol_result_to_dict,
)
from tests.conftest import network_strategy


class TestNetworkRoundTrip:
    @given(network_strategy())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_identity(self, net):
        again = loads_network(dumps_network(net))
        assert again == net

    def test_dict_contents(self):
        net = BusNetwork((2.0, 3.0), 0.5, NetworkKind.NCP_NFE, ("a", "b"))
        d = network_to_dict(net)
        assert d["kind"] == "ncp-nfe"
        assert d["names"] == ["a", "b"]

    def test_rejects_wrong_format_tag(self):
        with pytest.raises(ValueError, match="format"):
            network_from_dict({"format": "something-else"})

    def test_rejects_malformed_fields(self):
        base = network_to_dict(BusNetwork((2.0,), 0.5, NetworkKind.CP))
        bad = dict(base)
        del bad["z"]
        with pytest.raises(ValueError, match="malformed"):
            network_from_dict(bad)
        bad = dict(base, kind="mesh")
        with pytest.raises(ValueError, match="malformed"):
            network_from_dict(bad)


class TestMechanismDump:
    def test_fields_and_json_clean(self):
        r = DLSBL(NetworkKind.CP, 0.5).truthful_run([2.0, 3.0, 5.0])
        d = mechanism_result_to_dict(r)
        text = json.dumps(d)  # must be pure JSON types
        again = json.loads(text)
        assert again["payments"] == pytest.approx(list(r.payments))
        assert again["user_cost"] == pytest.approx(r.user_cost)


class TestProtocolDump:
    def test_honest_run_dump(self):
        out = DLSBLNCP([2.0, 3.0, 5.0], NetworkKind.NCP_FE, 0.4).run()
        d = protocol_result_to_dict(out)
        again = json.loads(json.dumps(d))
        assert again["completed"] is True
        assert again["terminal_phase"] == "COMPLETE"
        assert again["verdicts"] == []
        assert again["traffic"]["control_messages"] > 0

    def test_terminated_run_dump_includes_verdicts(self):
        from repro.agents.behaviors import AgentBehavior, Deviation

        out = DLSBLNCP([2.0, 3.0, 5.0], NetworkKind.NCP_FE, 0.4,
                       behaviors={1: AgentBehavior(
                           deviations={Deviation.MULTIPLE_BIDS})}).run()
        d = json.loads(json.dumps(protocol_result_to_dict(out)))
        assert d["completed"] is False
        assert d["verdicts"][0]["fines"][0]["who"] == "P2"
        assert d["verdicts"][0]["rewards"]


class TestProtocolDumpEdges:
    def test_abstention_run_dump(self):
        from repro.agents.behaviors import abstaining

        out = DLSBLNCP([2.0, 3.0, 5.0], NetworkKind.NCP_FE, 0.4,
                       behaviors={1: abstaining()}).run()
        d = json.loads(json.dumps(protocol_result_to_dict(out)))
        assert d["participants"] == ["P1", "P3"]
        assert d["payments"]["P2"] == 0.0
        assert d["alpha"]["P2"] == 0.0

    def test_commit_mode_dump(self):
        out = DLSBLNCP([2.0, 3.0], NetworkKind.NCP_FE, 0.4,
                       bidding_mode="commit").run()
        d = json.loads(json.dumps(protocol_result_to_dict(out)))
        assert d["completed"] is True
        assert d["traffic"]["messages"] > 0


class TestDumpsDispatch:
    def test_dispatch(self):
        r = DLSBL(NetworkKind.CP, 0.5).truthful_run([2.0, 3.0])
        assert "mechanism-result" in dumps_result(r)
        out = DLSBLNCP([2.0, 3.0], NetworkKind.NCP_FE, 0.4).run()
        assert "protocol-result" in dumps_result(out)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            dumps_result({"not": "a result"})
