"""Config objects and deprecation shims: old call sites warn, never break.

The kwargs collapse (EngineConfig / RunOptions) keeps every historical
calling convention working through DeprecationWarning shims that
produce *identical* results.  These tests are the pin: if a shim stops
warning, warns twice, or changes behaviour, this file goes red.
"""

import warnings

import pytest

from repro.core.dls_bl_ncp import DLSBLNCP, EngineConfig
from repro.dlt.platform import NetworkKind
from repro.sweep import RunOptions, SweepPlan, run_plan

W = [2.0, 3.0, 5.0]
Z = 0.4


def _balances(outcome):
    return dict(outcome.balances)


class TestEngineConfig:
    def test_config_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcome = DLSBLNCP(
                W, NetworkKind.NCP_FE, Z,
                config=EngineConfig(bidding_mode="commit")).run()
        assert outcome.completed

    def test_legacy_kwargs_warn_once_and_match_config_path(self):
        with pytest.warns(DeprecationWarning, match="EngineConfig") as rec:
            legacy = DLSBLNCP(W, NetworkKind.NCP_FE, Z,
                              bidding_mode="commit", pki_seed=7).run()
        assert len(rec) == 1
        config = EngineConfig(bidding_mode="commit", pki_seed=7)
        modern = DLSBLNCP(W, NetworkKind.NCP_FE, Z, config=config).run()
        assert _balances(legacy) == _balances(modern)
        assert legacy.bids == modern.bids

    def test_unknown_kwarg_is_a_type_error_listing_fields(self):
        with pytest.raises(TypeError, match="bogus"):
            DLSBLNCP(W, NetworkKind.NCP_FE, Z, bogus=1)

    def test_from_config_classmethod(self):
        config = EngineConfig(num_blocks=60)
        mech = DLSBLNCP.from_config(W, NetworkKind.NCP_FE, Z, config)
        assert mech.run().completed

    def test_injected_memo_requires_memoized_redundancy(self):
        from repro.perf import ComputationCache

        with pytest.raises(ValueError, match="memoized"):
            EngineConfig(memo=ComputationCache(), redundancy="independent")


class TestRunOptions:
    def plan(self, n=6):
        return SweepPlan.from_scenarios(
            "utility-point",
            [{"w": W, "z": Z, "kind": "ncp-fe", "i": 0,
              "bid_factor": 1.0 + 0.05 * i, "exec_factor": 1.0}
             for i in range(n)])

    def test_options_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_plan(self.plan(), RunOptions(workers=1))
        assert len(result.records) == 6

    def test_legacy_kwargs_warn_once_with_identical_digest(self):
        modern = run_plan(self.plan(), RunOptions(workers=2, chunk_size=2))
        with pytest.warns(DeprecationWarning, match="RunOptions") as rec:
            legacy = run_plan(self.plan(), workers=2, chunk_size=2)
        assert len(rec) == 1
        assert legacy.digest() == modern.digest()

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="pool_size"):
            run_plan(self.plan(), pool_size=4)

    def test_run_bench_workers_kwarg_warns(self, monkeypatch):
        from repro.perf import bench

        # The shim is about argument folding, not timing: stub the
        # timer so the kernels are built but never run.
        monkeypatch.setattr(bench, "_best_of", lambda fn, rounds: 0.0)
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            timings = bench.run_bench(quick=True, workers=1)
        assert "protocol_m64" in timings


class TestTopLevelReexports:
    def test_facade_importable_from_repro(self):
        import repro

        for name in ("EngagementRequest", "SweepRequest", "BenchRequest",
                     "EngineConfig", "RunOptions", "execute", "ApiError"):
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_quickstart_facade_snippet_runs(self):
        from repro import EngagementRequest, execute

        result = execute(EngagementRequest(w=(2.0, 3.0, 5.0), z=0.3))
        assert result.completed
