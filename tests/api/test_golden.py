"""Golden fixtures: the v1 wire format and digests are frozen.

The JSON files under ``tests/api/golden/`` are the compatibility
contract of ``repro/api/v1``: they must parse forever, re-encode
byte-identically (after canonicalization), and — for the execution
digests — produce the same settlements on every machine and Python
version.  A failure here means a wire-format or semantics break that
needs a schema bump (``repro/api/v2``), not a fixture refresh; see
DESIGN.md §4.9.
"""

import json
from pathlib import Path

import pytest

from repro.api import (
    execute,
    request_from_dict,
    settlement_digest,
)
from repro.sweep.spec import canonical_json

GOLDEN = Path(__file__).parent / "golden"
DIGESTS = json.loads((GOLDEN / "digests.json").read_text())

REQUEST_FIXTURES = ("engagement_request", "committee_request",
                    "sweep_request", "bench_request", "market_request")


def load(name: str) -> dict:
    return json.loads((GOLDEN / f"{name}.json").read_text())


class TestFrozenRequests:
    @pytest.mark.parametrize("name", REQUEST_FIXTURES)
    def test_parses_and_reencodes_identically(self, name):
        data = load(name)
        request = request_from_dict(data)
        assert canonical_json(request.to_dict()) == canonical_json(data), (
            f"{name}: to_dict() no longer round-trips the frozen payload — "
            "this is a v1 wire-format break")

    @pytest.mark.parametrize("name", REQUEST_FIXTURES)
    def test_digest_is_frozen(self, name):
        request = request_from_dict(load(name))
        assert request.digest() == DIGESTS[name], (
            f"{name}: canonical digest changed — identical requests no "
            "longer deduplicate across versions")

    def test_engagement_fixtures_exercise_every_field(self):
        # The fixtures are only a meaningful contract if together they
        # pin the whole surface: every EngagementRequest field appears
        # in at least one frozen body.  (The committee fields are
        # sparse on the wire, so they live in the committee fixture.)
        body: set[str] = set()
        for name in ("engagement_request", "committee_request"):
            body |= {k for k in load(name) if k not in ("schema", "type")}
        from dataclasses import fields

        from repro.api import EngagementRequest

        assert body == {f.name for f in fields(EngagementRequest)}

    def test_market_fixture_exercises_every_field(self):
        # MarketRequest materializes every field on the wire (no sparse
        # fields), so one fixture pins the whole surface.
        from dataclasses import fields

        from repro.api import MarketRequest

        body = {k for k in load("market_request")
                if k not in ("schema", "type")}
        assert body == {f.name for f in fields(MarketRequest)}


class TestFrozenExecution:
    def test_engagement_settlement_digest_is_frozen(self):
        result = execute(request_from_dict(load("engagement_request")))
        assert result.digest() == DIGESTS["engagement_result"], (
            "the engagement settlement changed for a frozen request — "
            "either the mechanism semantics moved (update EXPERIMENTS.md "
            "and refresh deliberately) or determinism broke")
        assert result.digest() == settlement_digest(result.outcome)

    def test_sweep_digest_is_frozen(self):
        result = execute(request_from_dict(load("sweep_request")))
        assert result.digest() == DIGESTS["sweep_result"]

    def test_market_stream_digest_is_frozen(self):
        # A seeded 200-round market run — churn, contention, resident
        # deviants — must fold to the frozen stream digest: the whole
        # arrival/churn/admission derivation and every settlement along
        # the way are pinned by one hash.
        result = execute(request_from_dict(load("market_request")))
        assert result.digest() == DIGESTS["market_result"], (
            "the market round stream changed for a frozen request — "
            "either a seeded derivation moved (bump MARKET_VERSION and "
            "refresh deliberately) or determinism broke")
        assert result.rounds == 200
        assert result.summary["max_ledger_error"] < 1e-9

    def test_committee_settlement_digest_is_frozen(self):
        # An N=4 committee carrying a fine-stealing seat-0 leader must
        # settle exactly as frozen: the quorum out-votes the thief.
        result = execute(request_from_dict(load("committee_request")))
        assert result.digest() == DIGESTS["committee_result"], (
            "the committee settlement changed for a frozen request — "
            "quorum adjudication semantics moved (update EXPERIMENTS.md "
            "and refresh deliberately) or determinism broke")
        assert result.outcome["certificates"], (
            "a committee run must archive its quorum certificates")
