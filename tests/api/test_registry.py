"""The request-type registry: one dispatch seam, completely populated.

The api_redesign contract: ``execute()``, ``request_from_dict`` and the
daemon's cache policy all dispatch through :mod:`repro.api.registry`.
These tests pin that the registry is *complete* (every wire kind has a
class and an executor), *stable* (a discriminator cannot be silently
rebound), and *faithful* (parsing through the registry is the same
function the legacy entry points delegate to, error messages included).
"""

import pytest

from repro.api import (
    ApiError,
    BenchRequest,
    EngagementRequest,
    MarketRequest,
    MultiEngagementRequest,
    SweepRequest,
    execute,
    register_request,
    request_entry,
)
from repro.api import registry
from repro.api import v1

REQUEST_KINDS = ("engagement", "multi-engagement", "sweep", "bench",
                 "market")
RESULT_KINDS = ("engagement-result", "multi-engagement-result",
                "sweep-result", "bench-result", "market-result",
                "stats-result", "fleet-stats-result")


class TestCompleteness:
    def test_every_request_kind_is_registered(self):
        assert set(registry.REQUEST_CLASSES) == set(REQUEST_KINDS)

    def test_every_result_kind_is_registered(self):
        assert set(registry.RESULT_CLASSES) == set(RESULT_KINDS)

    def test_every_request_kind_has_an_executor(self):
        import repro.api.execute  # noqa: F401 — attaches executors

        for kind in REQUEST_KINDS:
            entry = request_entry(kind)
            assert entry is not None, f"{kind} unregistered"
            assert callable(entry.executor), f"{kind} has no executor"

    def test_executors_share_one_signature(self):
        # The daemon's warm workers call every executor the same way;
        # a kind that cannot accept the cache kwargs would break them.
        import inspect

        import repro.api.execute  # noqa: F401

        for kind in REQUEST_KINDS:
            sig = inspect.signature(request_entry(kind).executor)
            assert {"memo", "signature_cache"} <= set(sig.parameters), (
                f"{kind} executor must accept memo/signature_cache")


class TestCachePolicy:
    def test_bench_is_the_only_uncacheable_kind(self):
        uncacheable = {kind for kind in REQUEST_KINDS
                       if not request_entry(kind).cacheable}
        assert uncacheable == {"bench"}

    def test_cacheable_helper_matches_entries(self):
        assert registry.cacheable(EngagementRequest(w=(2.0, 3.0), z=0.4))
        assert registry.cacheable(MarketRequest())
        assert not registry.cacheable(BenchRequest())
        assert not registry.cacheable(object())  # unregistered: never


class TestStability:
    def test_re_registration_is_an_idempotent_merge(self):
        entry = request_entry("market")
        before = (entry.cls, entry.executor, entry.cacheable)
        register_request(MarketRequest)  # None args keep what's there
        entry = request_entry("market")
        assert (entry.cls, entry.executor, entry.cacheable) == before

    def test_rebinding_a_kind_to_a_new_class_is_refused(self):
        class Impostor:
            TYPE = "market"

        with pytest.raises(ValueError, match="already registered"):
            register_request(Impostor)
        assert request_entry("market").cls is MarketRequest

    def test_registering_a_typeless_class_is_refused(self):
        class Nameless:
            pass

        with pytest.raises(ValueError, match="no TYPE"):
            register_request(Nameless)


class TestParsingDispatch:
    def test_parse_request_dispatches_every_kind(self):
        for req in (EngagementRequest(w=(2.0, 3.0), z=0.4),
                    BenchRequest(),
                    MarketRequest(rounds=3)):
            assert registry.parse_request(req.to_dict()) == req

    def test_legacy_entry_points_are_registry_views(self):
        # The old module-level dicts are the registry's live dict
        # objects (not copies), so a late registration is visible to
        # every consumer at once.
        assert v1.REQUEST_TYPES is registry.REQUEST_CLASSES
        assert v1.RESULT_TYPES is registry.RESULT_CLASSES

    def test_unknown_type_error_message_is_unchanged(self):
        with pytest.raises(ApiError,
                           match=r"unknown request type 'mystery'; "
                                 r"valid types: \['bench'"):
            v1.request_from_dict({"schema": v1.SCHEMA, "type": "mystery"})
        with pytest.raises(ApiError, match="unknown result type"):
            v1.result_from_dict({"schema": v1.SCHEMA, "type": "mystery"})

    def test_non_mapping_payloads_rejected(self):
        with pytest.raises(ApiError, match="JSON object"):
            registry.parse_request([1, 2, 3])
        with pytest.raises(ApiError, match="JSON object"):
            registry.parse_result("nope")


class TestExecutorDispatch:
    def test_execute_is_registry_driven(self):
        # Registering a throwaway kind makes execute() handle it with
        # no edits to repro.api.execute — the whole point of the seam.
        class ProbeRequest:
            TYPE = "registry-probe"

            def __init__(self):
                self.handled = False

        try:
            register_request(
                ProbeRequest,
                lambda req, *, memo=None, signature_cache=None: "probed")
            assert execute(ProbeRequest()) == "probed"
        finally:
            registry.REQUEST_CLASSES.pop("registry-probe", None)
            registry._ENTRIES.pop("registry-probe", None)

    def test_unexecutable_request_names_the_registered_kinds(self):
        with pytest.raises(ApiError, match="registered request types"):
            execute(object())

    def test_execute_still_runs_real_requests(self):
        req = EngagementRequest(w=(2.0, 3.0, 5.0), z=0.4)
        result = execute(req)
        assert result.digest() == execute(req).digest()

    def test_multi_engagement_dispatch(self):
        sub = EngagementRequest(w=(2.0, 3.0), z=0.4).to_dict()
        req = MultiEngagementRequest(engagements=(sub,))
        assert execute(req).digest()

    def test_sweep_executor_accepts_cache_kwargs(self):
        from repro.sweep import SweepPlan

        plan = SweepPlan.from_scenarios(
            "utility-point",
            [{"w": [2.0, 3.0], "z": 0.4, "kind": "ncp-fe", "i": 0,
              "bid_factor": 1.0, "exec_factor": 1.0}]).to_dict()
        req = SweepRequest(plan=plan)
        assert execute(req, memo=None, signature_cache=None).digest()
