"""repro.api v1: validation, canonical round-trips, digest identity."""

import json

import pytest

from repro.api import (
    SCHEMA,
    ApiError,
    BenchRequest,
    BenchResult,
    EngagementRequest,
    EngagementResult,
    FleetStatsResult,
    MarketRequest,
    MarketResult,
    MultiEngagementRequest,
    ServiceStats,
    SweepRequest,
    execute,
    request_from_dict,
    result_from_dict,
    settlement_digest,
)
from repro.sweep import SweepPlan

W = (2.0, 3.0, 5.0)
Z = 0.4


def square_plan_dict(n=4):
    return SweepPlan.from_scenarios(
        "utility-point",
        [{"w": list(W), "z": Z, "kind": "ncp-fe", "i": 0,
          "bid_factor": 1.0 + 0.1 * i, "exec_factor": 1.0}
         for i in range(n)],
        root_seed=7).to_dict()


class TestEnvelope:
    def test_every_payload_is_schema_tagged(self):
        for payload in (EngagementRequest(w=W, z=Z),
                        SweepRequest(plan=square_plan_dict()),
                        BenchRequest(),
                        ServiceStats()):
            d = payload.to_dict()
            assert d["schema"] == SCHEMA
            assert d["type"] == type(payload).TYPE

    def test_wrong_schema_rejected_with_version_hint(self):
        d = EngagementRequest(w=W, z=Z).to_dict()
        d["schema"] = "repro/api/v2"
        with pytest.raises(ApiError, match="newer API version"):
            EngagementRequest.from_dict(d)

    def test_unknown_field_rejected_by_name(self):
        d = EngagementRequest(w=W, z=Z).to_dict()
        d["surprise"] = 1
        with pytest.raises(ApiError, match=r"\['surprise'\]"):
            EngagementRequest.from_dict(d)

    def test_type_dispatch(self):
        for req in (EngagementRequest(w=W, z=Z),
                    SweepRequest(plan=square_plan_dict()),
                    BenchRequest(quick=True)):
            assert request_from_dict(req.to_dict()) == req

    def test_unknown_request_type_lists_valid(self):
        with pytest.raises(ApiError, match="bench.*engagement.*sweep"):
            request_from_dict({"schema": SCHEMA, "type": "mystery"})


class TestEngagementRequestValidation:
    def test_defaults_materialized_in_to_dict(self):
        d = EngagementRequest(w=W, z=Z).to_dict()
        assert d["num_blocks"] == 120
        assert d["bidding_mode"] == "atomic"
        assert d["redundancy"] == "memoized"
        assert d["deviants"] == [] and d["crash"] == []

    def test_json_round_trip_is_exact(self):
        req = EngagementRequest(
            w=W, z=Z, kind="ncp-nfe", bidding_mode="commit",
            fine_factor=3.0, deviants=((1, "multiple-bids"),),
            crash=((0, 0.5),), drop_rate=0.1, seed=9, pki_seed=4)
        again = request_from_dict(json.loads(json.dumps(req.to_dict())))
        assert again == req
        assert again.digest() == req.digest()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(w=(2.0,), z=Z), "at least 2"),
        (dict(w=W, z=0.0), "z must be > 0"),
        (dict(w=(2.0, -1.0), z=Z), r"w\[1\] must be > 0"),
        (dict(w=W, z=Z, kind="cp"), "control processor"),
        (dict(w=W, z=Z, kind="mesh"), "kind must be one of"),
        (dict(w=W, z=Z, bidding_mode="gossip"), "bidding_mode"),
        (dict(w=W, z=Z, num_blocks=0), "num_blocks"),
        (dict(w=W, z=Z, deviants=((5, "multiple-bids"),)), "out of range"),
        (dict(w=W, z=Z, deviants=((0, "nope"),)), "unknown deviation"),
        (dict(w=W, z=Z, crash=((1, 1.5),)), "crash progress"),
        (dict(w=W, z=Z, drop_rate=1.0), "drop_rate"),
        (dict(w=W, z=Z, redundancy="psychic"), "redundancy"),
    ])
    def test_actionable_validation_errors(self, kwargs, match):
        with pytest.raises(ApiError, match=match):
            EngagementRequest(**kwargs)

    def test_digest_ignores_field_order(self):
        a = EngagementRequest(w=W, z=Z, seed=1)
        d = a.to_dict()
        shuffled = dict(reversed(list(d.items())))
        assert request_from_dict(shuffled).digest() == a.digest()


class TestSweepAndBenchRequests:
    def test_sweep_embeds_a_valid_plan(self):
        req = SweepRequest(plan=square_plan_dict(), workers=2)
        assert len(req.build_plan()) == 4
        assert request_from_dict(req.to_dict()) == req

    def test_sweep_rejects_malformed_plan_with_reason(self):
        with pytest.raises(ApiError, match="not a valid repro/sweep-plan"):
            SweepRequest(plan={"format": "nope"})

    def test_bench_round_trip(self):
        req = BenchRequest(quick=False, workers=2)
        assert request_from_dict(req.to_dict()) == req

    def test_bench_quick_must_be_bool(self):
        with pytest.raises(ApiError, match="quick"):
            BenchRequest(quick=1)


class TestMultiEngagementRequest:
    def _payloads(self, k=2):
        return tuple(EngagementRequest(
            w=tuple(x * (1.0 + 0.5 * j) for x in W), z=Z).to_dict()
            for j in range(k))

    def test_round_trip_is_exact(self):
        req = MultiEngagementRequest(engagements=self._payloads(3),
                                     policy="sjf")
        clone = request_from_dict(json.loads(json.dumps(req.to_dict())))
        assert clone == req
        assert clone.digest() == req.digest()

    def test_ids_are_deterministic(self):
        req = MultiEngagementRequest(engagements=self._payloads(3))
        assert req.engagement_ids == ("E1", "E2", "E3")

    def test_wrapping_a_solo_request_is_verbatim(self):
        solo = EngagementRequest(w=W, z=Z, committee=4)
        req = MultiEngagementRequest(engagements=(solo.to_dict(),))
        assert req.sub_requests() == (solo,)

    def test_needs_at_least_one_engagement(self):
        with pytest.raises(ApiError, match="at least 1"):
            MultiEngagementRequest(engagements=())

    def test_policy_choice_validated(self):
        with pytest.raises(ApiError, match="policy"):
            MultiEngagementRequest(engagements=self._payloads(),
                                   policy="lifo")

    def test_mismatched_z_rejected_with_position(self):
        bad = (EngagementRequest(w=W, z=Z).to_dict(),
               EngagementRequest(w=W, z=0.7).to_dict())
        with pytest.raises(ApiError, match=r"engagements\[1\]\.z"):
            MultiEngagementRequest(engagements=bad)

    def test_sub_payload_errors_carry_position(self):
        bad = dict(EngagementRequest(w=W, z=Z).to_dict())
        bad["fine_factor"] = -1.0
        with pytest.raises(ApiError, match=r"engagements\[1\]"):
            MultiEngagementRequest(
                engagements=(EngagementRequest(w=W, z=Z).to_dict(), bad))

    def test_result_digest_detects_corruption(self):
        from repro.api import run_multi_engagement

        res = run_multi_engagement(
            MultiEngagementRequest(engagements=self._payloads()))
        doc = res.to_dict()
        doc["digest_value"] = "0" * 64
        with pytest.raises(ApiError, match="corrupted"):
            result_from_dict(doc)


class TestMarketRequest:
    def test_defaults_materialized_in_to_dict(self):
        d = MarketRequest().to_dict()
        assert d["rounds"] == 100
        assert d["policy"] == "fifo"
        assert d["deviants"] == []
        assert d["reputation_decay"] == 0.8
        assert d["admission_floor"] == 0.2

    def test_json_round_trip_is_exact(self):
        req = MarketRequest(
            rounds=50, seed=9, z=0.5, kind="ncp-nfe", num_blocks=24,
            processors=8, cohort=4, deviants=((0, "multiple-bids"),
                                              (2, "short-allocation")),
            arrival_rate=3.0, contention_window=0.25, max_contention=2,
            policy="sjf", join_rate=0.1, leave_rate=0.05,
            reputation_decay=0.7, admission_floor=0.3, window=10)
        again = request_from_dict(json.loads(json.dumps(req.to_dict())))
        assert again == req
        assert again.digest() == req.digest()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(rounds=0), "rounds"),
        (dict(z=0.0), "z must be > 0"),
        (dict(kind="cp"), "kind must be one of"),
        (dict(processors=1), "processors"),
        (dict(cohort=1), "cohort"),
        (dict(processors=3, cohort=4), "cohort must be <= processors"),
        (dict(w_low=0.0), "w_low"),
        (dict(w_low=3.0, w_high=2.0), "w_high"),
        (dict(arrival_rate=0.0), "arrival_rate"),
        (dict(contention_window=-1.0), "contention_window"),
        (dict(max_contention=0), "max_contention"),
        (dict(policy="lifo"), "policy"),
        (dict(join_rate=1.5), "join_rate"),
        (dict(leave_rate=-0.1), "leave_rate"),
        (dict(deviants=((9, "multiple-bids"),)), "out of range"),
        (dict(deviants=((0, "nope"),)), "unknown deviation"),
        (dict(processors=2, cohort=2,
              deviants=((0, "multiple-bids"), (1, "split-bids"))),
         "at least one honest"),
        (dict(reputation_decay=1.5), "reputation_decay"),
        (dict(admission_floor=1.0), "admission_floor"),
        (dict(window=0), "window"),
    ])
    def test_actionable_validation_errors(self, kwargs, match):
        with pytest.raises(ApiError, match=match):
            MarketRequest(**kwargs)

    def test_unknown_field_rejected_by_name(self):
        d = MarketRequest().to_dict()
        d["volatility"] = 0.5
        with pytest.raises(ApiError, match=r"\['volatility'\]"):
            MarketRequest.from_dict(d)


class TestMarketResult:
    def _result(self):
        return MarketResult(
            rounds=4, digest_value="ab" * 32,
            summary={"fines": 2, "welfare_total": 9.5},
            series={"welfare": [2.0, 2.5], "fines": [1, 1]},
            reputations={"M1": 0.512, "M2": 1.0})

    def test_round_trip_and_identity(self):
        res = self._result()
        again = result_from_dict(json.loads(json.dumps(res.to_dict())))
        assert again == res
        # The stream digest IS the identity; telemetry (cached) is not.
        assert again.digest() == "ab" * 32
        replayed = MarketResult(**{**vars(res), "cached": True})
        assert replayed.digest() == res.digest()

    def test_requires_a_stream_digest(self):
        with pytest.raises(ApiError, match="digest_value"):
            MarketResult(rounds=1)

    def test_rejects_malformed_series_and_reputations(self):
        with pytest.raises(ApiError, match=r"series\['welfare'\]"):
            MarketResult(digest_value="ff", series={"welfare": 3})
        with pytest.raises(ApiError, match="reputations"):
            MarketResult(digest_value="ff", reputations={"M1": 2.0})


class TestResults:
    def test_engagement_result_digest_excludes_telemetry(self):
        res = execute(EngagementRequest(w=W, z=Z))
        record = dict(res.outcome)
        assert "traffic" in record and "spans" in record
        mutated = dict(record)
        mutated["traffic"] = {"messages": 10**9}
        mutated["spans"] = []
        assert settlement_digest(mutated) == settlement_digest(record)
        tampered = dict(record)
        tampered["balances"] = {k: v + 1.0
                                for k, v in record["balances"].items()}
        assert settlement_digest(tampered) != settlement_digest(record)

    def test_engagement_result_round_trip(self):
        res = execute(EngagementRequest(w=W, z=Z))
        again = result_from_dict(json.loads(json.dumps(res.to_dict())))
        assert isinstance(again, EngagementResult)
        assert again.digest() == res.digest()
        assert again.completed == res.completed
        assert again.spans == res.spans

    def test_sweep_result_round_trip_checks_digest(self):
        res = execute(SweepRequest(plan=square_plan_dict()))
        payload = res.to_dict()
        again = result_from_dict(payload)
        assert again.digest() == res.digest()
        corrupted = dict(payload)
        corrupted["records"] = list(corrupted["records"])[:-1]
        with pytest.raises(ApiError, match="corrupted"):
            result_from_dict(corrupted)

    def test_bench_result_round_trip(self):
        res = BenchResult(timings={"kernel_a": 0.25}, quick=True)
        assert result_from_dict(res.to_dict()) == res

    def test_fleet_stats_result_round_trip(self):
        res = FleetStatsResult(
            daemons=({"endpoint": "127.0.0.1:7341", "healthy": True,
                      "stats": {"requests": 3}},
                     {"endpoint": "127.0.0.1:7342", "healthy": False,
                      "stats": None}),
            dispatcher={"requests": 3, "failovers": 1})
        again = result_from_dict(json.loads(json.dumps(res.to_dict())))
        assert isinstance(again, FleetStatsResult)
        assert again == res
        assert again.healthy == 1

    def test_fleet_stats_result_rejects_malformed_daemons(self):
        with pytest.raises(ApiError, match="endpoint"):
            FleetStatsResult(daemons=({"healthy": True},))
        with pytest.raises(ApiError, match="daemons"):
            FleetStatsResult(daemons=7)
        with pytest.raises(ApiError, match="dispatcher"):
            FleetStatsResult(dispatcher=[1, 2])


class TestExecuteDigestIdentity:
    def test_engagement_digest_matches_direct_engine_run(self):
        from repro.api import build_mechanism, result_from_outcome

        req = EngagementRequest(w=W, z=Z, deviants=((2, "split-bids"),))
        assert (execute(req).digest()
                == result_from_outcome(build_mechanism(req).run()).digest())

    def test_sweep_digest_matches_run_plan(self):
        from repro.sweep import run_plan

        req = SweepRequest(plan=square_plan_dict())
        assert execute(req).digest() == run_plan(req.build_plan()).digest()

    def test_shared_caches_do_not_change_settlement(self):
        from repro.perf import ComputationCache, SignatureCache
        from repro.api import run_engagement

        memo, sigs = ComputationCache(), SignatureCache()
        req = EngagementRequest(w=W, z=Z)
        first = run_engagement(req, memo=memo, signature_cache=sigs)
        warm = run_engagement(req, memo=memo, signature_cache=sigs)
        cold = run_engagement(req)
        assert first.digest() == warm.digest() == cold.digest()
        # the warm run actually hit the shared caches
        assert (warm.outcome["traffic"] != cold.outcome["traffic"]
                or memo.stats.hits > 0)
