#!/usr/bin/env python
"""CI smoke for the engagement service: daemon up, answers right, drains.

Passes, all fast enough for the PR lane:

1. **In-process** (ServiceClient): an engagement and a sweep served off
   the warm pool must be digest-identical to direct ``execute()`` calls;
   a repeated request must come back ``cached`` with the same digest;
   ``stats`` must account for everything.
2. **Market** (ServiceClient): a seeded 30-round market run served off
   the pool must reproduce the direct run's stream digest and replay
   repeats from the result cache.
3. **Out-of-process** (``repro serve`` + ``repro call``): the real CLI
   daemon on a real unix socket answers ``ping``, executes a request
   file, reports ``stats``, and exits cleanly on ``shutdown``.
4. **Fleet** (``LocalFleet`` + ``FleetDispatcher``): two real TCP
   daemons behind the digest-sharding dispatcher serve an engagement
   and a sweep digest-identical to direct ``execute()``, a repeat hits
   a warm cache, and the fleet stats see every daemon healthy.

Exit code 0 on success; any assertion or subprocess failure is fatal.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

from repro.api import EngagementRequest, SweepRequest, execute
from repro.service import ServiceClient
from repro.sweep import SweepPlan

W = [2.0, 3.0, 5.0, 4.0]
Z = 0.4


def sweep_request() -> SweepRequest:
    plan = SweepPlan.from_scenarios(
        "utility-point",
        [{"w": W, "z": Z, "kind": "ncp-fe", "i": 0,
          "bid_factor": 1.0 + 0.05 * i, "exec_factor": 1.0}
         for i in range(3)],
        root_seed=1)
    return SweepRequest(plan=plan.to_dict())


def in_process_pass() -> None:
    engagement = EngagementRequest(w=tuple(W), z=Z, num_blocks=60)
    sweep = sweep_request()
    with ServiceClient(workers=1) as client:
        assert client.ping()["pong"] is True

        served = client.request(engagement)
        assert served.digest() == execute(engagement).digest(), (
            "served engagement settlement diverged from the direct call")
        assert client.request(sweep).digest() == execute(sweep).digest(), (
            "served sweep records diverged from the direct run")

        again = client.request(engagement)
        assert again.cached and again.digest() == served.digest()

        stats = client.stats()
        assert stats.requests == 3 and stats.completed == 3
        assert stats.cache_hits == 1 and stats.failed == 0
        assert stats.latency_p95 >= stats.latency_p50 >= 0.0
    print("in-process pass ok: digests match, cache hit, stats consistent")


def committee_pass() -> None:
    """An N=4 / f=1 referee committee served off the warm pool.

    The Byzantine fine-stealer at seat 0 must not move the settlement:
    the served committee run's digest equals the direct single-referee
    run of the same engagement (committee traffic and certificates are
    telemetry, not settlement), and the outcome carries the quorum
    certificates that made its verdict binding.
    """
    deviant = ((1, "multiple-bids"),)
    base = EngagementRequest(w=tuple(W), z=Z, num_blocks=60,
                             deviants=deviant)
    quorum = EngagementRequest(w=tuple(W), z=Z, num_blocks=60,
                               deviants=deviant, committee=4,
                               byzantine=((0, "fine-steal"),))
    with ServiceClient(workers=1) as client:
        served = client.request(quorum)
        assert served.digest() == execute(base).digest(), (
            "committee settlement diverged from the trusted-referee run")
        assert served.outcome["certificates"], (
            "committee run produced no quorum certificates")
        assert served.outcome["verdicts"], "the deviant went unconvicted"
    print("committee pass ok: N=4 f=1 settles like the trusted referee, "
          f"{len(served.outcome['certificates'])} certificate(s) archived")


def multi_engagement_pass() -> None:
    """K=2 engagements multiplexed over one bus, served off the pool.

    The served multi-engagement answer must be digest-identical to the
    direct arbiter call *and* to the serial reference (each engagement
    run alone) — the settlement-invariance contract — and a repeat must
    come back from the result cache.
    """
    from repro.api import (
        MultiEngagementRequest,
        serial_reference,
    )

    request = MultiEngagementRequest(
        engagements=(
            EngagementRequest(w=tuple(W), z=Z, num_blocks=60).to_dict(),
            EngagementRequest(w=(3.0, 4.0, 6.0), z=Z, kind="ncp-nfe",
                              num_blocks=60).to_dict(),
        ),
        policy="sjf")
    with ServiceClient(workers=1) as client:
        served = client.request(request)
        assert served.digest() == execute(request).digest(), (
            "served multi-engagement settlements diverged from the "
            "direct arbiter run")
        assert served.digest() == serial_reference(request), (
            "arbiter settlements diverged from the serial reference")
        assert set(served.outcomes) == {"E1", "E2"}
        assert all(rec["completed"] for rec in served.outcomes.values())

        again = client.request(request)
        assert again.cached and again.digest() == served.digest()
    print("multi-engagement pass ok: K=2 sjf settles like the serial "
          f"reference (order {' -> '.join(served.order)})")


def market_pass() -> None:
    """A seeded market run served off the warm pool.

    The MarketResult's identity is its round-stream digest, so the
    smoke reduces to one equality: the served run must reproduce the
    direct ``execute()`` digest exactly, the ledger must conserve every
    round, and a repeat must replay from the result cache (a market run
    is the most expensive cacheable kind the daemon serves).
    """
    from repro.api import MarketRequest

    request = MarketRequest(rounds=30, seed=5, processors=6, cohort=3,
                            num_blocks=12, arrival_rate=2.0,
                            contention_window=0.3,
                            deviants=((0, "multiple-bids"),),
                            join_rate=0.1, leave_rate=0.05, window=10)
    direct = execute(request)
    with ServiceClient(workers=1) as client:
        served = client.request(request)
        assert served.digest() == direct.digest(), (
            "served market stream diverged from the direct run")
        assert served.summary["max_ledger_error"] < 1e-6, (
            "market ledger not conserved")
        again = client.request(request)
        assert again.cached and again.digest() == direct.digest()
    print("market pass ok: "
          f"{direct.rounds} rounds stream-digest identical across "
          "direct/served, repeat cached")


def cli_pass() -> None:
    env = dict(os.environ)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        sock = os.path.join(tmp, "repro.sock")
        request_file = os.path.join(tmp, "request.json")
        with open(request_file, "w", encoding="utf-8") as fh:
            json.dump(EngagementRequest(
                w=tuple(W), z=Z, num_blocks=60).to_dict(), fh)

        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert daemon.poll() is None, (
                    "daemon exited before listening:\n"
                    + (daemon.stdout.read() or ""))
                assert time.monotonic() < deadline, "daemon never listened"
                time.sleep(0.05)

            def call(*argv: str) -> dict:
                proc = subprocess.run(
                    [sys.executable, "-m", "repro", "call",
                     "--socket", sock, *argv],
                    env=env, capture_output=True, text=True, timeout=300)
                assert proc.returncode == 0, proc.stderr or proc.stdout
                return json.loads(proc.stdout)

            assert call("--op", "ping")["result"]["pong"] is True
            response = call("--request", request_file)
            direct = execute(EngagementRequest(w=tuple(W), z=Z,
                                               num_blocks=60))
            assert response["result"]["digest_value"] == direct.digest(), (
                "CLI-served digest diverged from the direct call")
            assert call("--op", "stats")["result"]["completed"] == 1
            assert call("--op", "shutdown")["result"]["draining"] is True
            assert daemon.wait(timeout=30) == 0, "daemon exit was unclean"
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)
    print("cli pass ok: serve/call round-trip, clean drain on shutdown")


def fleet_pass() -> None:
    """Two ``repro serve --tcp`` daemons behind the sharding dispatcher.

    The dispatcher must route by settlement digest, answer both request
    kinds digest-identical to direct ``execute()``, serve a repeat from
    whichever daemon owns its shard (``cached``), and report the whole
    fleet healthy.
    """
    from repro.service import LocalFleet

    engagement = EngagementRequest(w=tuple(W), z=Z, num_blocks=60)
    sweep = sweep_request()
    with LocalFleet(daemons=2, workers=1) as fleet:
        dispatcher = fleet.dispatcher()
        assert dispatcher.request(engagement).digest() \
            == execute(engagement).digest(), (
                "fleet-served engagement diverged from the direct call")
        assert dispatcher.request(sweep).digest() \
            == execute(sweep).digest(), (
                "fleet-served sweep diverged from the direct run")

        again = dispatcher.submit(engagement)
        assert again["ok"] and again["result"].get("cached"), (
            "repeat was recomputed instead of served from a warm cache")

        stats = dispatcher.stats()
        assert stats.healthy == 2, "a daemon dropped out mid-smoke"
        assert dispatcher.counters.requests == 3
        assert not dispatcher.quarantined
    print("fleet pass ok: 2 TCP daemons shard by digest, answers match "
          "direct execution, repeat served cached")


def main() -> int:
    in_process_pass()
    committee_pass()
    multi_engagement_pass()
    market_pass()
    cli_pass()
    fleet_pass()
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
