"""Legacy setup shim.

The offline build environment ships setuptools without the ``wheel``
package, so PEP 517 editable installs fail on ``bdist_wheel``.  This
shim lets ``pip install -e .`` take the classic ``setup.py develop``
path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
